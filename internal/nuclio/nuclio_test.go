package nuclio

import (
	"bytes"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"sledge/internal/workloads/apps"
)

// TestMain lets the re-executed test binary act as a function worker.
func TestMain(m *testing.M) {
	if MaybeWorkerMain() {
		return
	}
	os.Exit(m.Run())
}

func newRuntime(t *testing.T) *Runtime {
	t.Helper()
	rt, err := New(Config{MaxWorkers: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return rt
}

func TestInvokePing(t *testing.T) {
	rt := newRuntime(t)
	resp, err := rt.Invoke("ping", nil)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if string(resp) != "p" {
		t.Errorf("ping = %q", resp)
	}
	if rt.Invocations.Load() != 1 {
		t.Errorf("Invocations = %d", rt.Invocations.Load())
	}
}

func TestInvokeEchoMatchesNative(t *testing.T) {
	rt := newRuntime(t)
	payload := apps.EchoPayload(10 * 1024)
	resp, err := rt.Invoke("echo", payload)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if !bytes.Equal(resp, payload) {
		t.Errorf("echo over process IPC mangled payload (%d bytes)", len(resp))
	}
}

func TestInvokeEKF(t *testing.T) {
	rt := newRuntime(t)
	app, _ := apps.Get("gps-ekf")
	req := app.GenRequest()
	resp, err := rt.Invoke("gps-ekf", req)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	want := app.Native(req)
	if !bytes.Equal(resp, want) {
		t.Error("process-isolated EKF diverges from in-process native")
	}
}

func TestUnknownFunction(t *testing.T) {
	rt := newRuntime(t)
	if _, err := rt.Invoke("ghost", nil); !errors.Is(err, ErrUnknownFunction) {
		t.Errorf("unknown function: %v", err)
	}
}

func TestSpawnNoop(t *testing.T) {
	rt := newRuntime(t)
	start := time.Now()
	if err := rt.SpawnNoop(); err != nil {
		t.Fatalf("SpawnNoop: %v", err)
	}
	t.Logf("fork+exec+wait took %v", time.Since(start))
}

func TestConcurrencyBoundedByWorkers(t *testing.T) {
	rt, err := New(Config{MaxWorkers: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := rt.Invoke("ping", nil); err != nil {
				errCh <- err
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if rt.Invocations.Load() != 8 {
		t.Errorf("Invocations = %d", rt.Invocations.Load())
	}
}

func TestHTTPServing(t *testing.T) {
	rt := newRuntime(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go rt.Serve(ln)
	defer rt.Close()
	base := "http://" + ln.Addr().String()

	resp, err := http.Post(base+"/ping", "application/octet-stream", nil)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "p" {
		t.Errorf("ping over HTTP: %d %q", resp.StatusCode, body)
	}

	resp, err = http.Post(base+"/ghost", "application/octet-stream", nil)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown status = %d", resp.StatusCode)
	}
}

func TestWarmPoolReusesWorkers(t *testing.T) {
	pool, err := NewWarmPool(2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for i := 0; i < 10; i++ {
		resp, err := pool.Invoke("ping", nil)
		if err != nil {
			t.Fatalf("warm invoke %d: %v", i, err)
		}
		if string(resp) != "p" {
			t.Errorf("warm ping = %q", resp)
		}
	}
	if got := pool.Started(); got != 1 {
		t.Errorf("Started = %d, want 1 (sequential calls reuse one worker)", got)
	}
	// Payload round trip through framed IPC.
	payload := apps.EchoPayload(64 * 1024)
	resp, err := pool.Invoke("echo", payload)
	if err != nil {
		t.Fatalf("warm echo: %v", err)
	}
	if !bytes.Equal(resp, payload) {
		t.Error("warm echo mangled payload")
	}
	// Unknown function yields an empty response, not a dead worker.
	if resp, err := pool.Invoke("ghost", nil); err != nil || len(resp) != 0 {
		t.Errorf("ghost = %q, %v", resp, err)
	}
	if _, err := pool.Invoke("ping", nil); err != nil {
		t.Errorf("worker unhealthy after unknown function: %v", err)
	}
}

func TestWarmPoolConcurrent(t *testing.T) {
	pool, err := NewWarmPool(4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := pool.Invoke("ping", nil); err != nil {
				errCh <- err
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

func TestWarmPoolClose(t *testing.T) {
	pool, err := NewWarmPool(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Invoke("ping", nil); err != nil {
		t.Fatal(err)
	}
	pool.Close()
	if _, err := pool.Invoke("ping", nil); err == nil {
		t.Error("Invoke after Close accepted")
	}
}

func TestInvokeTimeoutKillsWorker(t *testing.T) {
	rt, err := New(Config{MaxWorkers: 1, InvokeTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// ~10^9 iterations of native spin takes well over the timeout.
	req := apps.SpinRequest(1_000_000_000)
	start := time.Now()
	_, err = rt.Invoke("spin", req)
	if err == nil {
		t.Fatal("timeout did not fire")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Errorf("error %v does not mention timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
	if rt.Failures.Load() != 1 {
		t.Errorf("Failures = %d", rt.Failures.Load())
	}
}

// Package nuclio is the reproduction's comparison baseline: a serverless
// runtime structured like Nuclio (Fig. 1(c) of the paper) — a per-tenant
// "function processor" with a bounded pool of worker slots that spawns a
// real operating-system process per invocation and exchanges the request
// and response over pipes.
//
// Unlike the Sledge runtime, the spawned process executes the *native*
// implementation of each application, so CPU-bound functions run at native
// speed; the baseline instead pays real fork/exec, IPC, and kernel
// scheduling costs on every request — exactly the overheads the paper
// attributes to process-per-function designs.
//
// The worker process is this same binary re-executed with an environment
// marker; hosts must call MaybeWorkerMain at startup (tests do this from
// TestMain, commands from main).
package nuclio

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync/atomic"
	"time"

	"sledge/internal/httpd"
	"sledge/internal/workloads/apps"
)

// workerEnv marks a process as a function worker.
const workerEnv = "SLEDGE_NUCLIO_WORKER"

// NoopFunction is a worker that exits immediately after startup; the churn
// experiment (Table 3) uses it to measure bare fork+exec+wait.
const NoopFunction = "__noop"

// MaybeWorkerMain turns the current process into a function worker if the
// worker environment marker is set: it reads the request from stdin, runs
// the named application's native implementation, writes the response to
// stdout, and exits. It returns false (without side effects) in ordinary
// processes.
func MaybeWorkerMain() bool {
	if maybeWarmWorkerMain() {
		return true
	}
	name := os.Getenv(workerEnv)
	if name == "" {
		return false
	}
	if name == NoopFunction {
		os.Exit(0)
	}
	app, ok := apps.Get(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "nuclio worker: unknown function %q\n", name)
		os.Exit(2)
	}
	req, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nuclio worker: read: %v\n", err)
		os.Exit(2)
	}
	resp := app.Native(req)
	if _, err := os.Stdout.Write(resp); err != nil {
		os.Exit(2)
	}
	os.Exit(0)
	return true // unreachable
}

// Config configures the baseline runtime.
type Config struct {
	// MaxWorkers bounds concurrent worker processes (the paper tunes
	// Nuclio's maxWorker to 16). Default 16.
	MaxWorkers int
	// InvokeTimeout bounds one invocation. Default 30 s.
	InvokeTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxWorkers == 0 {
		c.MaxWorkers = 16
	}
	if c.InvokeTimeout == 0 {
		c.InvokeTimeout = 30 * time.Second
	}
	return c
}

// Runtime is the process-per-invocation baseline.
type Runtime struct {
	cfg    Config
	exe    string
	slots  chan struct{}
	server *httpd.Server

	// Invocations counts completed requests; Failures counts errors.
	Invocations atomic.Uint64
	Failures    atomic.Uint64
}

// New builds the baseline runtime.
func New(cfg Config) (*Runtime, error) {
	cfg = cfg.withDefaults()
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("nuclio: cannot locate own executable: %w", err)
	}
	rt := &Runtime{
		cfg:   cfg,
		exe:   exe,
		slots: make(chan struct{}, cfg.MaxWorkers),
	}
	rt.server = &httpd.Server{Handler: rt.handle}
	return rt, nil
}

// ErrUnknownFunction reports an unregistered function name.
var ErrUnknownFunction = errors.New("nuclio: unknown function")

// Invoke runs one request through a freshly spawned worker process,
// blocking for a worker slot if the pool is saturated.
func (rt *Runtime) Invoke(name string, req []byte) ([]byte, error) {
	if _, ok := apps.Get(name); !ok && name != NoopFunction {
		return nil, fmt.Errorf("%w: %s", ErrUnknownFunction, name)
	}
	rt.slots <- struct{}{}
	defer func() { <-rt.slots }()
	return rt.spawn(name, req)
}

// spawn is the per-invocation cold path: fork+exec, write the request over
// the stdin pipe, collect stdout, and reap the process.
func (rt *Runtime) spawn(name string, req []byte) ([]byte, error) {
	cmd := exec.Command(rt.exe)
	cmd.Env = append(os.Environ(), workerEnv+"="+name)
	cmd.Stdin = bytes.NewReader(req)
	var out bytes.Buffer
	var errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Start(); err != nil {
		rt.Failures.Add(1)
		return nil, fmt.Errorf("nuclio: spawn: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			rt.Failures.Add(1)
			return nil, fmt.Errorf("nuclio: worker %s: %w (%s)", name, err, strings.TrimSpace(errBuf.String()))
		}
	case <-time.After(rt.cfg.InvokeTimeout):
		_ = cmd.Process.Kill()
		<-done
		rt.Failures.Add(1)
		return nil, fmt.Errorf("nuclio: worker %s timed out", name)
	}
	rt.Invocations.Add(1)
	return out.Bytes(), nil
}

// SpawnNoop measures one bare fork+exec+wait cycle (Table 3's churn
// baseline).
func (rt *Runtime) SpawnNoop() error {
	_, err := rt.spawn(NoopFunction, nil)
	return err
}

func (rt *Runtime) handle(req *httpd.Request) httpd.Response {
	name := strings.TrimPrefix(req.Path, "/")
	if i := strings.IndexByte(name, '?'); i >= 0 {
		name = name[:i]
	}
	body, err := rt.Invoke(name, req.Body)
	switch {
	case errors.Is(err, ErrUnknownFunction):
		return httpd.Response{Status: 404, Body: []byte(err.Error() + "\n")}
	case err != nil:
		return httpd.Response{Status: 500, Body: []byte(err.Error() + "\n")}
	}
	return httpd.Response{Status: 200, Body: body}
}

// Serve runs the baseline's HTTP listener until Close.
func (rt *Runtime) Serve(ln net.Listener) error { return rt.server.Serve(ln) }

// Close stops the HTTP listener.
func (rt *Runtime) Close() error { return rt.server.Close() }

package nuclio

// Warm-worker mode. The paper's Nuclio keeps the function-processor
// container persistent and forks per invocation; commercial platforms also
// reuse "warm" workers. This file adds that stronger baseline variant: a
// pool of persistent worker processes speaking a length-prefixed framed
// protocol over their stdin/stdout pipes. Warm invocations skip fork+exec
// but still pay pipe IPC and kernel scheduling — the overheads the paper
// argues remain in any process-model design.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"

	"sledge/internal/workloads/apps"
)

const warmEnv = "SLEDGE_NUCLIO_WARM"

// maybeWarmWorkerMain services framed requests until stdin closes.
// Frame format (little-endian): u32 name length, name bytes, u32 body
// length, body bytes; reply: u32 body length, body bytes.
func maybeWarmWorkerMain() bool {
	if os.Getenv(warmEnv) == "" {
		return false
	}
	in := bufio.NewReaderSize(os.Stdin, 1<<20)
	out := bufio.NewWriterSize(os.Stdout, 1<<20)
	for {
		name, err := readFrame(in)
		if err != nil {
			if err == io.EOF {
				os.Exit(0)
			}
			fmt.Fprintf(os.Stderr, "warm worker: %v\n", err)
			os.Exit(2)
		}
		req, err := readFrame(in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "warm worker: %v\n", err)
			os.Exit(2)
		}
		app, ok := apps.Get(string(name))
		var resp []byte
		if ok {
			resp = app.Native(req)
		}
		if err := writeFrame(out, resp); err != nil {
			os.Exit(2)
		}
		if err := out.Flush(); err != nil {
			os.Exit(2)
		}
	}
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > 64<<20 {
		return nil, fmt.Errorf("frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func writeFrame(w io.Writer, body []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// warmWorker is one persistent worker process.
type warmWorker struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	out   *bufio.Reader
}

// WarmPool manages persistent worker processes.
type WarmPool struct {
	mu      sync.Mutex
	exe     string
	idle    []*warmWorker
	size    int
	started int
	closed  bool
}

// NewWarmPool creates a pool of up to size persistent workers, spawned
// lazily on first use.
func NewWarmPool(size int) (*WarmPool, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("nuclio: %w", err)
	}
	if size <= 0 {
		size = 4
	}
	return &WarmPool{exe: exe, size: size}, nil
}

func (p *WarmPool) acquire() (*warmWorker, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, fmt.Errorf("nuclio: warm pool closed")
	}
	if n := len(p.idle); n > 0 {
		w := p.idle[n-1]
		p.idle = p.idle[:n-1]
		return w, nil
	}
	cmd := exec.Command(p.exe)
	cmd.Env = append(os.Environ(), warmEnv+"=1")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("nuclio: warm spawn: %w", err)
	}
	p.started++
	return &warmWorker{cmd: cmd, stdin: stdin, out: bufio.NewReaderSize(stdout, 1<<20)}, nil
}

func (p *WarmPool) release(w *warmWorker, healthy bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !healthy || p.closed || len(p.idle) >= p.size {
		w.stdin.Close()
		_ = w.cmd.Wait()
		return
	}
	p.idle = append(p.idle, w)
}

// Invoke runs one request on a warm worker (spawning one only if none is
// idle).
func (p *WarmPool) Invoke(name string, req []byte) ([]byte, error) {
	w, err := p.acquire()
	if err != nil {
		return nil, err
	}
	if err := writeFrame(w.stdin, []byte(name)); err != nil {
		p.release(w, false)
		return nil, fmt.Errorf("nuclio: warm IPC: %w", err)
	}
	if err := writeFrame(w.stdin, req); err != nil {
		p.release(w, false)
		return nil, fmt.Errorf("nuclio: warm IPC: %w", err)
	}
	resp, err := readFrame(w.out)
	if err != nil {
		p.release(w, false)
		return nil, fmt.Errorf("nuclio: warm IPC: %w", err)
	}
	p.release(w, true)
	return resp, nil
}

// Started reports how many worker processes were ever spawned.
func (p *WarmPool) Started() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.started
}

// Close terminates all idle workers.
func (p *WarmPool) Close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, w := range idle {
		w.stdin.Close()
		_ = w.cmd.Wait()
	}
}

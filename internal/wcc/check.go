package wcc

import (
	"fmt"

	"sledge/internal/wasm"
)

type builtinKind int

const (
	bInline   builtinKind = iota + 1 // single wasm opcode
	bHost                            // host import
	bAlloc                           // bump allocator (generated function)
	bHeapBase                        // constant: first free byte after statics
)

type builtin struct {
	kind   builtinKind
	params []Type
	ret    Type
	op     wasm.Opcode
	module string
	name   string
}

var (
	i32T = Type{Kind: KindI32}
	i64T = Type{Kind: KindI64}
	f32T = Type{Kind: KindF32}
	f64T = Type{Kind: KindF64}
)

// builtinTable declares every function WCC programs may call without
// defining. Inline builtins lower to a single wasm instruction; host
// builtins become imports provided by the serverless ABI (package abi).
var builtinTable = map[string]builtin{
	"sqrt":  {kind: bInline, params: []Type{f64T}, ret: f64T, op: wasm.OpF64Sqrt},
	"fabs":  {kind: bInline, params: []Type{f64T}, ret: f64T, op: wasm.OpF64Abs},
	"floor": {kind: bInline, params: []Type{f64T}, ret: f64T, op: wasm.OpF64Floor},
	"ceil":  {kind: bInline, params: []Type{f64T}, ret: f64T, op: wasm.OpF64Ceil},
	"trunc": {kind: bInline, params: []Type{f64T}, ret: f64T, op: wasm.OpF64Trunc},
	"round": {kind: bInline, params: []Type{f64T}, ret: f64T, op: wasm.OpF64Nearest},
	"fmin":  {kind: bInline, params: []Type{f64T, f64T}, ret: f64T, op: wasm.OpF64Min},
	"fmax":  {kind: bInline, params: []Type{f64T, f64T}, ret: f64T, op: wasm.OpF64Max},

	"exp":   {kind: bHost, params: []Type{f64T}, ret: f64T, module: "math", name: "exp"},
	"log":   {kind: bHost, params: []Type{f64T}, ret: f64T, module: "math", name: "log"},
	"pow":   {kind: bHost, params: []Type{f64T, f64T}, ret: f64T, module: "math", name: "pow"},
	"sin":   {kind: bHost, params: []Type{f64T}, ret: f64T, module: "math", name: "sin"},
	"cos":   {kind: bHost, params: []Type{f64T}, ret: f64T, module: "math", name: "cos"},
	"atan2": {kind: bHost, params: []Type{f64T, f64T}, ret: f64T, module: "math", name: "atan2"},

	"sys_read":      {kind: bHost, params: []Type{i32T, i32T}, ret: i32T, module: "sledge", name: "read"},
	"sys_write":     {kind: bHost, params: []Type{i32T, i32T}, ret: i32T, module: "sledge", name: "write"},
	"sys_req_len":   {kind: bHost, ret: i32T, module: "sledge", name: "req_len"},
	"sys_output":    {kind: bHost, params: []Type{i32T, i32T}, ret: i32T, module: "sledge", name: "output"},
	"sys_input_len": {kind: bHost, ret: i32T, module: "sledge", name: "input_len"},
	"sys_kv_get":    {kind: bHost, params: []Type{i32T, i32T, i32T, i32T}, ret: i32T, module: "sledge", name: "kv_get"},
	"sys_kv_set":    {kind: bHost, params: []Type{i32T, i32T, i32T, i32T}, ret: i32T, module: "sledge", name: "kv_set"},
	"sys_clock_ms":  {kind: bHost, ret: i64T, module: "sledge", name: "clock_ms"},
	"sys_rand":      {kind: bHost, ret: i32T, module: "sledge", name: "rand"},

	"alloc":     {kind: bAlloc, params: []Type{i32T}, ret: i32T},
	"heap_base": {kind: bHeapBase, ret: i32T},
}

type checker struct {
	prog     *program
	consts   map[string]int64
	arrays   map[string]int
	globals  map[string]int
	funcs    map[string]int
	usesHost map[string]bool // builtin names (bHost) referenced
	useAlloc bool

	// per-function state
	cur    *funcDecl
	scopes []map[string]int // name -> local slot
}

func check(prog *program) (*checker, error) {
	ck := &checker{
		prog:     prog,
		consts:   make(map[string]int64),
		arrays:   make(map[string]int),
		globals:  make(map[string]int),
		funcs:    make(map[string]int),
		usesHost: make(map[string]bool),
	}
	for _, c := range prog.consts {
		ck.consts[c.name] = c.val
	}
	for i, a := range prog.arrays {
		if _, dup := ck.arrays[a.name]; dup {
			return nil, errAt(a.tok, "duplicate array %s", a.name)
		}
		ck.arrays[a.name] = i
	}
	for i, g := range prog.globals {
		if _, dup := ck.globals[g.name]; dup {
			return nil, errAt(g.tok, "duplicate global %s", g.name)
		}
		ck.globals[g.name] = i
	}
	for i := range prog.funcs {
		f := &prog.funcs[i]
		if _, dup := ck.funcs[f.name]; dup {
			return nil, errAt(f.tok, "duplicate function %s", f.name)
		}
		if _, isBuiltin := builtinTable[f.name]; isBuiltin {
			return nil, errAt(f.tok, "function %s shadows a builtin", f.name)
		}
		ck.funcs[f.name] = i
	}
	for i := range prog.globals {
		g := &prog.globals[i]
		if err := ck.checkGlobalInit(g); err != nil {
			return nil, err
		}
	}
	for i := range prog.funcs {
		if err := ck.checkFunc(&prog.funcs[i]); err != nil {
			return nil, err
		}
	}
	return ck, nil
}

func (ck *checker) checkGlobalInit(g *globalDecl) error {
	switch init := g.init.(type) {
	case *intLit:
		init.typ = g.typ
		if !g.typ.IsNumeric() {
			return errAt(g.tok, "global %s: bad type", g.name)
		}
	case *floatLit:
		init.typ = g.typ
		if !g.typ.IsFloat() {
			return errAt(g.tok, "global %s: float initializer for %s", g.name, g.typ)
		}
	case *unExpr:
		// Allow negated literals.
		if lit, ok := init.e.(*intLit); ok && init.op == "-" {
			lit.val = -lit.val
			lit.typ = g.typ
			g.init = lit
			return nil
		}
		if lit, ok := init.e.(*floatLit); ok && init.op == "-" {
			lit.val = -lit.val
			lit.typ = g.typ
			g.init = lit
			return nil
		}
		return errAt(g.tok, "global %s: initializer must be a literal", g.name)
	default:
		return errAt(g.tok, "global %s: initializer must be a literal", g.name)
	}
	return nil
}

func (ck *checker) checkFunc(f *funcDecl) error {
	ck.cur = f
	f.localTypes = nil
	ck.scopes = []map[string]int{make(map[string]int, len(f.params))}
	for _, p := range f.params {
		if p.typ.Kind == KindVoid {
			return errAt(f.tok, "void parameter %s", p.name)
		}
		slot := len(f.localTypes)
		f.localTypes = append(f.localTypes, p.typ)
		ck.scopes[0][p.name] = slot
	}
	return ck.checkBlock(f.body)
}

func (ck *checker) pushScope() { ck.scopes = append(ck.scopes, make(map[string]int)) }
func (ck *checker) popScope()  { ck.scopes = ck.scopes[:len(ck.scopes)-1] }

func (ck *checker) lookupLocal(name string) (int, bool) {
	for i := len(ck.scopes) - 1; i >= 0; i-- {
		if slot, ok := ck.scopes[i][name]; ok {
			return slot, true
		}
	}
	return 0, false
}

func (ck *checker) checkBlock(stmts []stmt) error {
	ck.pushScope()
	defer ck.popScope()
	for _, s := range stmts {
		if err := ck.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (ck *checker) checkStmt(s stmt) error {
	switch n := s.(type) {
	case *declStmt:
		if _, dup := ck.scopes[len(ck.scopes)-1][n.name]; dup {
			return errAt(n.tok, "duplicate variable %s", n.name)
		}
		if n.init != nil {
			if err := ck.checkExpr(n.init); err != nil {
				return err
			}
			if err := ck.coerce(&n.init, n.typ); err != nil {
				return errAt(n.tok, "cannot initialize %s %s with %s", n.typ, n.name, n.init.resultType())
			}
		}
		n.slot = len(ck.cur.localTypes)
		ck.cur.localTypes = append(ck.cur.localTypes, n.typ)
		ck.scopes[len(ck.scopes)-1][n.name] = n.slot
		return nil

	case *assignStmt:
		if err := ck.checkExpr(n.val); err != nil {
			return err
		}
		if n.ptr != nil {
			// Memory store through an index expression.
			if err := ck.checkExpr(n.ptr); err != nil {
				return err
			}
			if err := ck.checkExpr(n.index); err != nil {
				return err
			}
			pt := n.ptr.resultType()
			if pt.Kind != KindPtr {
				return errAt(n.tok, "indexed assignment requires a pointer, got %s", pt)
			}
			if it := n.index.resultType(); it.Kind != KindI32 {
				return errAt(n.tok, "array index must be i32, got %s", it)
			}
			want := pt.Elem.ValueType()
			if err := ck.coerce(&n.val, want); err != nil {
				return errAt(n.tok, "cannot store %s into %s element", n.val.resultType(), pt)
			}
			return nil
		}
		// Variable target.
		if slot, ok := ck.lookupLocal(n.name); ok {
			n.slot = slot
			want := ck.cur.localTypes[slot]
			if err := ck.coerce(&n.val, want); err != nil {
				return errAt(n.tok, "cannot assign %s to %s %s", n.val.resultType(), want, n.name)
			}
			return nil
		}
		if gi, ok := ck.globals[n.name]; ok {
			n.gidx = gi
			want := ck.prog.globals[gi].typ
			if err := ck.coerce(&n.val, want); err != nil {
				return errAt(n.tok, "cannot assign %s to global %s %s", n.val.resultType(), want, n.name)
			}
			return nil
		}
		return errAt(n.tok, "undefined variable %s", n.name)

	case *ifStmt:
		if err := ck.checkCond(n.cond); err != nil {
			return err
		}
		if err := ck.checkBlock(n.then); err != nil {
			return err
		}
		return ck.checkBlock(n.els_)

	case *whileStmt:
		if err := ck.checkCond(n.cond); err != nil {
			return err
		}
		return ck.checkBlock(n.body)

	case *forStmt:
		ck.pushScope() // the for clause introduces its own scope
		defer ck.popScope()
		if n.init != nil {
			if err := ck.checkStmt(n.init); err != nil {
				return err
			}
		}
		if n.cond != nil {
			if err := ck.checkCond(n.cond); err != nil {
				return err
			}
		}
		if n.post != nil {
			if err := ck.checkStmt(n.post); err != nil {
				return err
			}
		}
		return ck.checkBlock(n.body)

	case *returnStmt:
		if ck.cur.ret.Kind == KindVoid {
			if n.val != nil {
				return errAt(n.tok, "void function %s returns a value", ck.cur.name)
			}
			return nil
		}
		if n.val == nil {
			return errAt(n.tok, "function %s must return %s", ck.cur.name, ck.cur.ret)
		}
		if err := ck.checkExpr(n.val); err != nil {
			return err
		}
		if err := ck.coerce(&n.val, ck.cur.ret); err != nil {
			return errAt(n.tok, "cannot return %s from %s function", n.val.resultType(), ck.cur.ret)
		}
		return nil

	case *breakStmt, *continueStmt:
		return nil // loop nesting validated at codegen

	case *exprStmt:
		return ck.checkExpr(n.e)
	}
	return fmt.Errorf("wcc: unknown statement %T", s)
}

func (ck *checker) checkCond(e expr) error {
	if err := ck.checkExpr(e); err != nil {
		return err
	}
	if t := e.resultType(); t.Kind != KindI32 {
		return errAt(e.pos(), "condition must be i32, got %s", t)
	}
	return nil
}

// coerce makes *e assignable to want, retyping numeric literals in place.
// An i32 expression (e.g. an alloc() result) is implicitly usable as any
// pointer: pointers are byte addresses at runtime.
func (ck *checker) coerce(e *expr, want Type) error {
	got := (*e).resultType()
	if got == want {
		return nil
	}
	if (want.Kind == KindPtr && got.Kind == KindI32) ||
		(want.Kind == KindI32 && got.Kind == KindPtr) {
		if st, ok := (*e).(interface{ setType(Type) }); ok {
			st.setType(want)
			return nil
		}
	}
	switch lit := (*e).(type) {
	case *intLit:
		if want.IsNumeric() {
			lit.typ = want
			return nil
		}
	case *floatLit:
		if want.IsFloat() {
			lit.typ = want
			return nil
		}
	case *identExpr:
		if lit.isConst && want.IsNumeric() {
			lit.typ = want
			return nil
		}
	case *unExpr:
		if lit.op == "-" {
			if inner, ok := lit.e.(*intLit); ok && want.IsNumeric() {
				inner.typ = want
				lit.typ = want
				return nil
			}
			if inner, ok := lit.e.(*floatLit); ok && want.IsFloat() {
				inner.typ = want
				lit.typ = want
				return nil
			}
		}
	}
	return fmt.Errorf("type mismatch: %s vs %s", got, want)
}

func (ck *checker) checkExpr(e expr) error {
	switch n := e.(type) {
	case *intLit:
		if n.typ.Kind == KindVoid {
			n.typ = i32T
		}
		return nil
	case *floatLit:
		if n.typ.Kind == KindVoid {
			n.typ = f64T
		}
		return nil

	case *identExpr:
		if v, ok := ck.consts[n.name]; ok {
			n.isConst = true
			n.constVal = v
			n.typ = i32T
			return nil
		}
		if slot, ok := ck.lookupLocal(n.name); ok {
			n.local = slot
			n.typ = ck.cur.localTypes[slot]
			return nil
		}
		if gi, ok := ck.globals[n.name]; ok {
			n.global = gi
			n.typ = ck.prog.globals[gi].typ
			return nil
		}
		if ai, ok := ck.arrays[n.name]; ok {
			n.array = ai
			n.typ = Type{Kind: KindPtr, Elem: ck.prog.arrays[ai].elem}
			return nil
		}
		return errAt(n.tok, "undefined identifier %s", n.name)

	case *callExpr:
		for _, a := range n.args {
			if err := ck.checkExpr(a); err != nil {
				return err
			}
		}
		if b, ok := builtinTable[n.name]; ok {
			if len(n.args) != len(b.params) {
				return errAt(n.tok, "%s takes %d arguments, got %d", n.name, len(b.params), len(n.args))
			}
			for i := range n.args {
				if err := ck.coerce(&n.args[i], b.params[i]); err != nil {
					return errAt(n.tok, "%s argument %d: %v", n.name, i+1, err)
				}
			}
			n.typ = b.ret
			switch b.kind {
			case bHost:
				ck.usesHost[n.name] = true
			case bAlloc:
				ck.useAlloc = true
			}
			return nil
		}
		fi, ok := ck.funcs[n.name]
		if !ok {
			return errAt(n.tok, "undefined function %s", n.name)
		}
		fd := &ck.prog.funcs[fi]
		if len(n.args) != len(fd.params) {
			return errAt(n.tok, "%s takes %d arguments, got %d", n.name, len(fd.params), len(n.args))
		}
		for i := range n.args {
			if err := ck.coerce(&n.args[i], fd.params[i].typ); err != nil {
				return errAt(n.tok, "%s argument %d: %v", n.name, i+1, err)
			}
		}
		n.typ = fd.ret
		return nil

	case *indexExpr:
		if err := ck.checkExpr(n.ptr); err != nil {
			return err
		}
		if err := ck.checkExpr(n.index); err != nil {
			return err
		}
		pt := n.ptr.resultType()
		if pt.Kind != KindPtr {
			return errAt(n.tok, "cannot index %s", pt)
		}
		if it := n.index.resultType(); it.Kind != KindI32 {
			return errAt(n.tok, "array index must be i32, got %s", it)
		}
		n.typ = pt.Elem.ValueType()
		return nil

	case *binExpr:
		if err := ck.checkExpr(n.l); err != nil {
			return err
		}
		if err := ck.checkExpr(n.r); err != nil {
			return err
		}
		lt, rt := n.l.resultType(), n.r.resultType()

		// Pointer arithmetic: ptr + i32, ptr - i32.
		if lt.Kind == KindPtr && (n.op == "+" || n.op == "-") {
			if rt.Kind != KindI32 {
				return errAt(n.tok, "pointer offset must be i32, got %s", rt)
			}
			n.typ = lt
			return nil
		}

		// Unify literal operand types.
		if lt != rt {
			if err := ck.coerce(&n.r, lt); err != nil {
				if err2 := ck.coerce(&n.l, rt); err2 != nil {
					return errAt(n.tok, "operand type mismatch: %s %s %s", lt, n.op, rt)
				}
			}
			lt = n.l.resultType()
		}
		if !lt.IsNumeric() {
			return errAt(n.tok, "operator %s requires numeric operands, got %s", n.op, lt)
		}
		switch n.op {
		case "&&", "||":
			if lt.Kind != KindI32 {
				return errAt(n.tok, "operator %s requires i32 operands", n.op)
			}
			n.typ = i32T
		case "==", "!=", "<", "<=", ">", ">=":
			n.typ = i32T
		case "&", "|", "^", "<<", ">>", "%":
			if !lt.IsInt() {
				return errAt(n.tok, "operator %s requires integer operands, got %s", n.op, lt)
			}
			n.typ = lt
		default:
			n.typ = lt
		}
		return nil

	case *unExpr:
		if err := ck.checkExpr(n.e); err != nil {
			return err
		}
		t := n.e.resultType()
		switch n.op {
		case "-":
			if !t.IsNumeric() {
				return errAt(n.tok, "cannot negate %s", t)
			}
			n.typ = t
		case "!":
			if t.Kind != KindI32 {
				return errAt(n.tok, "operator ! requires i32, got %s", t)
			}
			n.typ = i32T
		}
		return nil

	case *castExpr:
		if err := ck.checkExpr(n.e); err != nil {
			return err
		}
		from := n.e.resultType()
		if !from.IsNumeric() && from.Kind != KindPtr {
			return errAt(n.tok, "cannot cast %s", from)
		}
		if n.to.Kind == KindPtr {
			// Pointer reinterpretation: any address-typed value converts.
			if from.Kind != KindPtr && from.Kind != KindI32 {
				return errAt(n.tok, "cannot cast %s to %s", from, n.to)
			}
			n.typ = n.to
			return nil
		}
		if from.Kind == KindPtr && n.to.Kind != KindI32 {
			return errAt(n.tok, "pointers cast only to i32 or other pointer types")
		}
		if !n.to.IsNumeric() {
			return errAt(n.tok, "cannot cast to %s", n.to)
		}
		n.typ = n.to
		return nil
	}
	return fmt.Errorf("wcc: unknown expression %T", e)
}

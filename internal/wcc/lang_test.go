package wcc_test

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"sledge/internal/abi"
	"sledge/internal/engine"
	"sledge/internal/wcc"
)

func TestCommentsAndLiterals(t *testing.T) {
	src := `
// line comment with code: i32 bogus = 1;
/* block
   comment */
const MASK = 0xFF; // hex constant

export i32 f(i32 x) {
	/* inline */ i32 y = 0x10; // 16
	f64 z = 1.5e2;             // 150
	return (x & MASK) + y + (i32) z;
}
`
	if got := run(t, src, "f", 0x1234); got != (0x34 + 16 + 150) {
		t.Errorf("f = %d", got)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	src := `
export i32 f(i32 a, i32 b) {
	return a + b * 2 - a / 2 % 3;
}

export i32 g(i32 a, i32 b) {
	return a << 2 | b & 3 ^ 1;
}

export i32 h(i32 a) {
	return a > 2 && a < 10 || a == 0;
}
`
	ref := func(a, b int32) int32 { return a + b*2 - a/2%3 }
	for _, c := range [][2]int32{{7, 3}, {100, -5}, {-9, 4}} {
		if got := run(t, src, "f", uint64(uint32(c[0])), uint64(uint32(c[1]))); int32(got) != ref(c[0], c[1]) {
			t.Errorf("f(%d,%d) = %d, want %d", c[0], c[1], int32(got), ref(c[0], c[1]))
		}
	}
	refG := func(a, b int32) int32 { return a<<2 | b&3 ^ 1 }
	if got := run(t, src, "g", 5, 7); int32(got) != refG(5, 7) {
		t.Errorf("g = %d, want %d", int32(got), refG(5, 7))
	}
	cases := map[uint64]uint64{0: 1, 1: 0, 3: 1, 9: 1, 10: 0}
	for a, want := range cases {
		if got := run(t, src, "h", a); got != want {
			t.Errorf("h(%d) = %d, want %d", a, got, want)
		}
	}
}

func TestElseIfChain(t *testing.T) {
	src := `
export i32 grade(i32 score) {
	if (score >= 90) {
		return 4;
	} else if (score >= 80) {
		return 3;
	} else if (score >= 70) {
		return 2;
	} else {
		return 0;
	}
}
`
	cases := map[uint64]uint64{95: 4, 85: 3, 75: 2, 60: 0}
	for in, want := range cases {
		if got := run(t, src, "grade", in); got != want {
			t.Errorf("grade(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestNegativeNumbersAndUnary(t *testing.T) {
	src := `
global f64 bias = -2.5;

export f64 f(f64 x) {
	return -x * 2.0 + bias;
}

export i32 neg(i32 x) {
	return -x;
}
`
	got := math.Float64frombits(run(t, src, "f", math.Float64bits(3)))
	if got != -8.5 {
		t.Errorf("f(3) = %v, want -8.5", got)
	}
	if got := run(t, src, "neg", uint64(uint32(7))); int32(got) != -7 {
		t.Errorf("neg(7) = %d", int32(got))
	}
}

func TestI64Arithmetic(t *testing.T) {
	src := `
export i64 f(i64 a, i64 b) {
	i64 c = a * b + 1;
	return c % 1000007;
}
`
	check := func(a, b int64) bool {
		got := run(t, src, "f", uint64(a), uint64(b))
		want := (a*b + 1) % 1000007
		return int64(got) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWCCCompileDeterministic(t *testing.T) {
	src := `
const N = 4;
static f64 A[N];
export f64 f() {
	for (i32 i = 0; i < N; i = i + 1) {
		A[i] = (f64) i;
	}
	return A[0] + A[1] + A[2] + A[3];
}
`
	r1, err := wcc.Compile(src, wcc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := wcc.Compile(src, wcc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if string(r1.Binary) != string(r2.Binary) {
		t.Error("compilation is not deterministic")
	}
}

func TestHeapBaseAndAllocInteraction(t *testing.T) {
	src := `
static u8 pad[100];

export i32 f() {
	i32 base = heap_base();
	u8* a = alloc(10);
	u8* b = alloc(1);
	// Allocations are 8-byte aligned and start at the heap base.
	return ((i32) a == base) + 2 * ((i32) b == base + 16);
}
`
	if got := run(t, src, "f"); got != 3 {
		t.Errorf("heap layout check = %d, want 3", got)
	}
}

func TestGlobalsOfEachType(t *testing.T) {
	src := `
global i32 gi = 7;
global i64 gl = -9;
global f32 gf = 1.5;
global f64 gd = 2.25;

export f64 f() {
	return (f64) gi + (f64) gl + (f64) gf + gd;
}
`
	got := math.Float64frombits(run(t, src, "f"))
	if got != 7-9+1.5+2.25 {
		t.Errorf("f = %v", got)
	}
}

func TestWhileWithBreakContinue(t *testing.T) {
	src := `
export i32 f(i32 n) {
	i32 i = 0;
	i32 acc = 0;
	while (1) {
		i = i + 1;
		if (i > n) {
			break;
		}
		if (i % 3 == 0) {
			continue;
		}
		acc = acc + i;
	}
	return acc;
}
`
	ref := func(n int) (acc int) {
		for i := 1; i <= n; i++ {
			if i%3 != 0 {
				acc += i
			}
		}
		return
	}
	for _, n := range []int{0, 1, 9, 20} {
		if got := run(t, src, "f", uint64(n)); int(got) != ref(n) {
			t.Errorf("f(%d) = %d, want %d", n, got, ref(n))
		}
	}
}

func TestLexerErrors(t *testing.T) {
	cases := []struct {
		src  string
		part string
	}{
		{"export i32 f() { return 1 @ 2; }", "unexpected character"},
		{"/* unterminated", "unterminated block comment"},
	}
	for _, c := range cases {
		_, err := wcc.Compile(c.src, wcc.Options{})
		if err == nil || !strings.Contains(err.Error(), c.part) {
			t.Errorf("Compile(%q) err = %v, want %q", c.src, err, c.part)
		}
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	src := "export i32 f() {\n\treturn undefined_name;\n}"
	_, err := wcc.Compile(src, wcc.Options{})
	if err == nil {
		t.Fatal("compile succeeded")
	}
	var cerr *wcc.Error
	if !errorsAs(err, &cerr) {
		t.Fatalf("error %T is not *wcc.Error", err)
	}
	if cerr.Line != 2 {
		t.Errorf("error line = %d, want 2", cerr.Line)
	}
}

func errorsAs(err error, target *(*wcc.Error)) bool {
	for err != nil {
		if e, ok := err.(*wcc.Error); ok {
			*target = e
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestRandomArithProgramsMatchGo generates random arithmetic expressions
// over two variables, compiles them through the full pipeline, and checks
// the result against direct Go evaluation.
func TestRandomArithProgramsMatchGo(t *testing.T) {
	type node struct {
		expr string
		eval func(a, b int32) int32
	}
	leafs := []node{
		{"a", func(a, b int32) int32 { return a }},
		{"b", func(a, b int32) int32 { return b }},
		{"3", func(a, b int32) int32 { return 3 }},
		{"11", func(a, b int32) int32 { return 11 }},
	}
	combine := []struct {
		op   string
		eval func(x, y int32) int32
	}{
		{"+", func(x, y int32) int32 { return x + y }},
		{"-", func(x, y int32) int32 { return x - y }},
		{"*", func(x, y int32) int32 { return x * y }},
		{"&", func(x, y int32) int32 { return x & y }},
		{"|", func(x, y int32) int32 { return x | y }},
		{"^", func(x, y int32) int32 { return x ^ y }},
	}
	// Deterministic pseudo-random expression construction.
	seed := uint64(12345)
	rnd := func(n int) int {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return int(seed % uint64(n))
	}
	build := func(depth int) node {
		var rec func(d int) node
		rec = func(d int) node {
			if d == 0 {
				return leafs[rnd(len(leafs))]
			}
			op := combine[rnd(len(combine))]
			l := rec(d - 1)
			r := rec(d - 1)
			return node{
				expr: "(" + l.expr + " " + op.op + " " + r.expr + ")",
				eval: func(a, b int32) int32 { return op.eval(l.eval(a, b), r.eval(a, b)) },
			}
		}
		return rec(depth)
	}
	for trial := 0; trial < 8; trial++ {
		n := build(4)
		src := "export i32 f(i32 a, i32 b) { return " + n.expr + "; }"
		res, err := wcc.Compile(src, wcc.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		cm, err := engine.CompileBinary(res.Binary, abi.Registry(), engine.Config{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, c := range [][2]int32{{0, 0}, {1, -1}, {12345, -999}, {math.MaxInt32, 7}} {
			inst := cm.Instantiate()
			inst.HostData = abi.NewContext(nil)
			got, err := inst.Invoke("f", uint64(uint32(c[0])), uint64(uint32(c[1])))
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if int32(got) != n.eval(c[0], c[1]) {
				t.Errorf("trial %d: f(%d,%d) = %d, want %d\nexpr: %s",
					trial, c[0], c[1], int32(got), n.eval(c[0], c[1]), n.expr)
			}
		}
	}
}

// TestDocWordCountExample keeps docs/WCC.md's complete example compiling
// and behaving as documented.
func TestDocWordCountExample(t *testing.T) {
	src := `
static u8 buf[65536];
static u8 out[12];

export i32 main() {
	i32 n = sys_read(buf, 65536);
	i32 words = 1;
	for (i32 i = 0; i < n; i = i + 1) {
		if (buf[i] == 32) {
			words = words + 1;
		}
	}
	i32 len = 0;
	if (words == 0) { out[0] = 48; len = 1; }
	while (words > 0) {
		i32 d = words % 10;
		i32 j = len;
		while (j > 0) { out[j] = out[j-1]; j = j - 1; }
		out[0] = 48 + d;
		len = len + 1;
		words = words / 10;
	}
	sys_write(out, len);
	return 0;
}
`
	res, err := wcc.Compile(src, wcc.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	cm, err := engine.CompileBinary(res.Binary, abi.Registry(), engine.Config{})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	cases := map[string]string{
		"one two three":           "3",
		"hello":                   "1",
		"a b c d e f g h i j k l": "12",
	}
	for in, want := range cases {
		inst := cm.Instantiate()
		ctx := abi.NewContext([]byte(in))
		inst.HostData = ctx
		if _, err := inst.Invoke("main"); err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if string(ctx.Response) != want {
			t.Errorf("wordcount(%q) = %q, want %q", in, ctx.Response, want)
		}
	}
}

func TestMoreCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		part string
	}{
		{"negated global float", `global f64 g = -1.5; export f64 f() { return g; }`, ""},
		{"global non-literal init", `export i32 h() { return 1; } global i32 g = h();`, "initializer must be a literal"},
		{"void global", `global void g = 0;`, "globals must be scalar"},
		{"pointer global", `global f64* g = 0;`, "globals must be scalar"},
		{"duplicate const", "const A = 1;\nconst A = 2;", "duplicate constant"},
		{"duplicate function", `void f() {} void f() {}`, "duplicate function"},
		{"builtin shadow", `i32 sqrt(i32 x) { return x; }`, "shadows a builtin"},
		{"continue outside loop", `export void f() { continue; }`, "continue outside loop"},
		{"index by float", `static f64 A[4]; export f64 f(f64 x) { return A[(i32) x + 1]; }`, ""},
		{"index by f64 direct", `static f64 A[4]; export f64 f(f64 x) { return A[x]; }`, "array index must be i32"},
		{"assign to undefined", `export void f() { ghost = 1; }`, "undefined variable"},
		{"return value from void", `export void f() { return 3; }`, "void function"},
		{"missing return value", `export i32 f() { return; }`, "must return"},
		{"zero-size array", `static f64 A[0];`, "non-positive size"},
		{"cast pointer to f64", `static u8 b[4]; export f64 f() { return (f64) b; }`, "pointers cast only to"},
		{"condition not i32", `export void f(f64 x) { if (x) { } }`, "condition must be i32"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := wcc.Compile(c.src, wcc.Options{})
			if c.part == "" {
				if err != nil {
					t.Errorf("expected success, got %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.part) {
				t.Errorf("err = %v, want %q", err, c.part)
			}
		})
	}
}

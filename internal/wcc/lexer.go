// Package wcc implements the workload compiler: a small C-like kernel
// language compiled to WebAssembly binary modules.
//
// The reproduction uses WCC where the paper uses clang: every PolyBench
// kernel and edge application is written once in WCC and compiled through
// the full wasm pipeline (encode → decode → validate → engine lowering), so
// the engine executes genuine Wasm modules rather than hand-built IR.
//
// Language summary:
//
//	const N = 128;                   // compile-time integer constants
//	static f64 A[N*N];               // arrays in linear memory
//	global i32 counter = 0;          // mutable wasm globals
//	export i32 main() { ... }        // functions; export makes them callable
//
// Types: i32, i64, f32, f64, void, and element pointers (u8*, i8*, i16*,
// u16*, i32*, i64*, f32*, f64*). Statements: declarations, assignment,
// if/else, while, for, break, continue, return. Builtins include wasm-level
// math (sqrt, fabs, floor, ceil, min, max), host math imports (exp, log,
// pow, sin, cos), the serverless ABI (sys_read, sys_write, ...), and a bump
// allocator (alloc).
package wcc

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokPunct // operators and delimiters
)

type token struct {
	kind tokKind
	text string
	// numeric literal values
	intVal   int64
	floatVal float64
	isFloat  bool
	line     int
	col      int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// Error is a positioned compile error.
type Error struct {
	Line int
	Col  int
	Msg  string
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("wcc: %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(t token, format string, args ...any) error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

var punctuation = []string{
	// Longest first so the lexer is maximal-munch.
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^",
	"(", ")", "{", "}", "[", "]", ";", ",",
}

func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for j := 0; j < n; j++ {
			if src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += n
	}
outer:
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			advance(1)
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			advance(2)
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
				advance(1)
			}
			if i+1 >= len(src) {
				return nil, &Error{Line: line, Col: col, Msg: "unterminated block comment"}
			}
			advance(2)
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			startLine, startCol := line, col
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				advance(1)
			}
			toks = append(toks, token{kind: tokIdent, text: src[start:i], line: startLine, col: startCol})
		case unicode.IsDigit(rune(c)):
			start := i
			startLine, startCol := line, col
			isFloat := false
			if c == '0' && i+1 < len(src) && (src[i+1] == 'x' || src[i+1] == 'X') {
				advance(2)
				for i < len(src) && isHexDigit(src[i]) {
					advance(1)
				}
			} else {
				for i < len(src) && unicode.IsDigit(rune(src[i])) {
					advance(1)
				}
				if i < len(src) && src[i] == '.' {
					isFloat = true
					advance(1)
					for i < len(src) && unicode.IsDigit(rune(src[i])) {
						advance(1)
					}
				}
				if i < len(src) && (src[i] == 'e' || src[i] == 'E') {
					isFloat = true
					advance(1)
					if i < len(src) && (src[i] == '+' || src[i] == '-') {
						advance(1)
					}
					for i < len(src) && unicode.IsDigit(rune(src[i])) {
						advance(1)
					}
				}
			}
			text := src[start:i]
			tok := token{text: text, line: startLine, col: startCol, isFloat: isFloat}
			if isFloat {
				tok.kind = tokFloat
				if _, err := fmt.Sscanf(text, "%g", &tok.floatVal); err != nil {
					return nil, &Error{Line: startLine, Col: startCol, Msg: "bad float literal " + text}
				}
			} else {
				tok.kind = tokInt
				var v uint64
				var err error
				if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X") {
					_, err = fmt.Sscanf(text, "%v", &v)
				} else {
					_, err = fmt.Sscanf(text, "%d", &v)
				}
				if err != nil {
					return nil, &Error{Line: startLine, Col: startCol, Msg: "bad integer literal " + text}
				}
				tok.intVal = int64(v)
			}
			toks = append(toks, tok)
		default:
			for _, p := range punctuation {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, token{kind: tokPunct, text: p, line: line, col: col})
					advance(len(p))
					continue outer
				}
			}
			return nil, &Error{Line: line, Col: col, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line, col: col})
	return toks, nil
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

package wcc

import "fmt"

// Type is a WCC type: a scalar value type or a pointer into linear memory.
type Type struct {
	// Kind is the value kind for scalars; for pointers, the kind is KindPtr
	// and Elem describes the pointee element.
	Kind Kind
	Elem ElemKind // valid when Kind == KindPtr
}

// Kind enumerates value kinds.
type Kind int

// Value kinds.
const (
	KindVoid Kind = iota
	KindI32
	KindI64
	KindF32
	KindF64
	KindPtr
)

// ElemKind enumerates memory element kinds for pointers.
type ElemKind int

// Element kinds.
const (
	ElemU8 ElemKind = iota + 1
	ElemI8
	ElemU16
	ElemI16
	ElemI32
	ElemI64
	ElemF32
	ElemF64
)

// Size returns the element width in bytes.
func (e ElemKind) Size() int {
	switch e {
	case ElemU8, ElemI8:
		return 1
	case ElemU16, ElemI16:
		return 2
	case ElemI32, ElemF32:
		return 4
	case ElemI64, ElemF64:
		return 8
	}
	return 0
}

// ValueType returns the scalar type an element loads as.
func (e ElemKind) ValueType() Type {
	switch e {
	case ElemI64:
		return Type{Kind: KindI64}
	case ElemF32:
		return Type{Kind: KindF32}
	case ElemF64:
		return Type{Kind: KindF64}
	default:
		return Type{Kind: KindI32}
	}
}

// String renders the type.
func (t Type) String() string {
	switch t.Kind {
	case KindVoid:
		return "void"
	case KindI32:
		return "i32"
	case KindI64:
		return "i64"
	case KindF32:
		return "f32"
	case KindF64:
		return "f64"
	case KindPtr:
		names := map[ElemKind]string{
			ElemU8: "u8", ElemI8: "i8", ElemU16: "u16", ElemI16: "i16",
			ElemI32: "i32", ElemI64: "i64", ElemF32: "f32", ElemF64: "f64",
		}
		return names[t.Elem] + "*"
	}
	return fmt.Sprintf("type(%d)", int(t.Kind))
}

// IsNumeric reports whether the type participates in arithmetic.
func (t Type) IsNumeric() bool {
	switch t.Kind {
	case KindI32, KindI64, KindF32, KindF64:
		return true
	}
	return false
}

// IsInt reports whether the type is an integer scalar.
func (t Type) IsInt() bool { return t.Kind == KindI32 || t.Kind == KindI64 }

// IsFloat reports whether the type is a floating scalar.
func (t Type) IsFloat() bool { return t.Kind == KindF32 || t.Kind == KindF64 }

// ---- expressions ----

type expr interface {
	exprNode()
	pos() token
	// typ is filled by the checker.
	resultType() Type
}

type baseExpr struct {
	tok token
	typ Type
}

func (b *baseExpr) exprNode()        {}
func (b *baseExpr) setType(t Type)   { b.typ = t }
func (b *baseExpr) pos() token       { return b.tok }
func (b *baseExpr) resultType() Type { return b.typ }

type intLit struct {
	baseExpr
	val int64
}

type floatLit struct {
	baseExpr
	val float64
}

type identExpr struct {
	baseExpr
	name string
	// resolved by the checker:
	local    int  // local slot when >= 0
	global   int  // global index when >= 0
	array    int  // static array index when >= 0
	isFunc   bool // function reference (only valid as call target)
	isConst  bool // folded compile-time constant
	constVal int64
}

type callExpr struct {
	baseExpr
	name string
	args []expr
}

type indexExpr struct {
	baseExpr
	ptr   expr
	index expr
}

type binExpr struct {
	baseExpr
	op   string
	l, r expr
}

type unExpr struct {
	baseExpr
	op string
	e  expr
}

type castExpr struct {
	baseExpr
	to Type
	e  expr
}

// ---- statements ----

type stmt interface{ stmtNode() }

type declStmt struct {
	tok  token
	typ  Type
	name string
	init expr // may be nil
	slot int  // filled by checker
}

type assignStmt struct {
	tok token
	// Either a variable target or a memory target.
	name  string
	slot  int // local slot; -1 for globals/memory
	gidx  int // global index; -1 otherwise
	ptr   expr
	index expr
	val   expr
}

type ifStmt struct {
	cond       expr
	then, els_ []stmt
}

type whileStmt struct {
	cond expr
	body []stmt
}

type forStmt struct {
	init stmt // declStmt or assignStmt; may be nil
	cond expr // may be nil (infinite)
	post stmt // assignStmt; may be nil
	body []stmt
}

type returnStmt struct {
	tok token
	val expr // nil for void
}

type breakStmt struct{ tok token }
type continueStmt struct{ tok token }

type exprStmt struct{ e expr }

func (*declStmt) stmtNode()     {}
func (*assignStmt) stmtNode()   {}
func (*ifStmt) stmtNode()       {}
func (*whileStmt) stmtNode()    {}
func (*forStmt) stmtNode()      {}
func (*returnStmt) stmtNode()   {}
func (*breakStmt) stmtNode()    {}
func (*continueStmt) stmtNode() {}
func (*exprStmt) stmtNode()     {}

// ---- top-level declarations ----

type param struct {
	name string
	typ  Type
}

type funcDecl struct {
	tok      token
	name     string
	params   []param
	ret      Type
	body     []stmt
	exported bool
	// filled by checker:
	localTypes []Type // all locals including params
}

type arrayDecl struct {
	tok  token
	name string
	elem ElemKind
	size int64 // element count, const-evaluated
	// filled by layout:
	offset uint32
}

type globalDecl struct {
	tok  token
	name string
	typ  Type
	init expr // constant literal
}

type constDecl struct {
	name string
	val  int64
}

type program struct {
	consts  []constDecl
	arrays  []arrayDecl
	globals []globalDecl
	funcs   []funcDecl
}

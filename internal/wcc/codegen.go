package wcc

import (
	"fmt"
	"math"
	"sort"

	"sledge/internal/wasm"
)

// Options configures compilation.
type Options struct {
	// HeapBytes reserves heap space after static arrays for alloc().
	// Default 256 KiB.
	HeapBytes int
	// ExtraPages adds linear-memory headroom beyond the computed minimum.
	ExtraPages uint32
	// Data provides initial contents for named static arrays, emitted as
	// data segments.
	Data map[string][]byte
}

// ArrayInfo describes a static array's placement in linear memory.
type ArrayInfo struct {
	Offset uint32
	Elem   ElemKind
	Count  int64
	Bytes  int64
}

// Result is a compiled WCC program.
type Result struct {
	// Module is the assembled wasm module (validated).
	Module *wasm.Module
	// Binary is the encoded wasm binary.
	Binary []byte
	// Arrays maps static array names to their memory placement.
	Arrays map[string]ArrayInfo
	// HeapBase is the first free byte after static data.
	HeapBase uint32
	// Exports lists exported function names.
	Exports []string
}

// Compile compiles WCC source to a validated wasm module.
func Compile(src string, opts Options) (*Result, error) {
	prog, err := parse(src)
	if err != nil {
		return nil, err
	}
	ck, err := check(prog)
	if err != nil {
		return nil, err
	}
	g := &codegen{prog: prog, ck: ck, opts: opts}
	res, err := g.generate()
	if err != nil {
		return nil, err
	}
	if err := wasm.Validate(res.Module); err != nil {
		return nil, fmt.Errorf("wcc: generated module failed validation: %w", err)
	}
	res.Binary, err = wasm.Encode(res.Module)
	if err != nil {
		return nil, err
	}
	return res, nil
}

type codegen struct {
	prog *program
	ck   *checker
	opts Options

	mod       *wasm.Module
	arrays    map[string]ArrayInfo
	heapBase  uint32
	importIdx map[string]uint32 // builtin name -> import func index
	funcIdx   map[string]uint32 // user function -> func index
	allocIdx  uint32            // __alloc function index (when used)
	heapGlob  uint32            // heap pointer global index (when used)

	// per-function state
	body  []wasm.Instr
	depth int
	loops []loopCtx
	cur   *funcDecl
}

type loopCtx struct {
	breakLevel int
	contLevel  int
}

func (g *codegen) emit(in wasm.Instr) { g.body = append(g.body, in) }

func (g *codegen) generate() (*Result, error) {
	g.mod = wasm.NewModule()
	g.arrays = make(map[string]ArrayInfo)
	g.importIdx = make(map[string]uint32)
	g.funcIdx = make(map[string]uint32)

	// ---- static data layout ----
	offset := uint32(16) // keep address 0 unused
	for i := range g.prog.arrays {
		a := &g.prog.arrays[i]
		size := uint32(a.elem.Size())
		offset = (offset + size - 1) &^ (size - 1)
		a.offset = offset
		bytes := int64(size) * a.size
		g.arrays[a.name] = ArrayInfo{Offset: offset, Elem: a.elem, Count: a.size, Bytes: bytes}
		if int64(offset)+bytes > math.MaxUint32 {
			return nil, errAt(a.tok, "static data exceeds 4 GiB")
		}
		offset += uint32(bytes)
	}
	g.heapBase = (offset + 15) &^ 15

	heapBytes := g.opts.HeapBytes
	if heapBytes == 0 {
		heapBytes = 256 << 10
	}
	totalBytes := uint64(g.heapBase) + uint64(heapBytes)
	minPages := uint32((totalBytes + wasm.PageSize - 1) / wasm.PageSize)
	if minPages == 0 {
		minPages = 1
	}
	minPages += g.opts.ExtraPages
	g.mod.Memories = []wasm.Limits{{Min: minPages, Max: minPages, HasMax: true}}

	// ---- imports ----
	var hostNames []string
	for name := range g.ck.usesHost {
		hostNames = append(hostNames, name)
	}
	sort.Strings(hostNames)
	for _, name := range hostNames {
		b := builtinTable[name]
		ft := wasm.FuncType{}
		for _, p := range b.params {
			ft.Params = append(ft.Params, valType(p))
		}
		if b.ret.Kind != KindVoid {
			ft.Results = []wasm.ValType{valType(b.ret)}
		}
		g.importIdx[name] = uint32(len(g.mod.Imports))
		g.mod.Imports = append(g.mod.Imports, wasm.Import{
			Module: b.module, Name: b.name, Kind: wasm.ExternFunc,
			TypeIdx: g.typeIdx(ft),
		})
	}
	numImports := uint32(len(g.mod.Imports))

	// ---- globals ----
	for _, gd := range g.prog.globals {
		init := wasm.Instr{}
		switch lit := gd.init.(type) {
		case *intLit:
			init = constInstr(gd.typ, lit.val, 0)
		case *floatLit:
			init = constInstr(gd.typ, 0, lit.val)
		}
		g.mod.Globals = append(g.mod.Globals, wasm.Global{
			Type: wasm.GlobalType{Type: valType(gd.typ), Mutable: true},
			Init: init,
		})
	}
	if g.ck.useAlloc {
		g.heapGlob = uint32(len(g.mod.Globals))
		g.mod.Globals = append(g.mod.Globals, wasm.Global{
			Type: wasm.GlobalType{Type: wasm.ValI32, Mutable: true},
			Init: wasm.Instr{Op: wasm.OpI32Const, Imm: uint64(g.heapBase)},
		})
	}

	// ---- function index assignment ----
	next := numImports
	if g.ck.useAlloc {
		g.allocIdx = next
		next++
	}
	for i := range g.prog.funcs {
		g.funcIdx[g.prog.funcs[i].name] = next
		next++
	}

	// ---- function bodies ----
	if g.ck.useAlloc {
		g.mod.Funcs = append(g.mod.Funcs, g.genAllocFunc())
	}
	var exports []string
	for i := range g.prog.funcs {
		fd := &g.prog.funcs[i]
		wf, err := g.genFunc(fd)
		if err != nil {
			return nil, err
		}
		g.mod.Funcs = append(g.mod.Funcs, wf)
		if fd.exported {
			g.mod.Exports = append(g.mod.Exports, wasm.Export{
				Name: fd.name, Kind: wasm.ExternFunc, Index: g.funcIdx[fd.name],
			})
			exports = append(exports, fd.name)
		}
	}

	// ---- data segments ----
	var dataNames []string
	for name := range g.opts.Data {
		dataNames = append(dataNames, name)
	}
	sort.Strings(dataNames)
	for _, name := range dataNames {
		info, ok := g.arrays[name]
		if !ok {
			return nil, fmt.Errorf("wcc: data for unknown array %q", name)
		}
		data := g.opts.Data[name]
		if int64(len(data)) > info.Bytes {
			return nil, fmt.Errorf("wcc: data for %q is %d bytes, array holds %d", name, len(data), info.Bytes)
		}
		g.mod.Data = append(g.mod.Data, wasm.DataSegment{
			Offset: wasm.Instr{Op: wasm.OpI32Const, Imm: uint64(info.Offset)},
			Bytes:  append([]byte(nil), data...),
		})
	}

	return &Result{
		Module:   g.mod,
		Arrays:   g.arrays,
		HeapBase: g.heapBase,
		Exports:  exports,
	}, nil
}

func valType(t Type) wasm.ValType {
	switch t.Kind {
	case KindI64:
		return wasm.ValI64
	case KindF32:
		return wasm.ValF32
	case KindF64:
		return wasm.ValF64
	default: // i32 and pointers
		return wasm.ValI32
	}
}

func constInstr(t Type, iv int64, fv float64) wasm.Instr {
	switch t.Kind {
	case KindI64:
		return wasm.Instr{Op: wasm.OpI64Const, Imm: uint64(iv)}
	case KindF32:
		return wasm.Instr{Op: wasm.OpF32Const, Imm: uint64(math.Float32bits(float32(fv)))}
	case KindF64:
		return wasm.Instr{Op: wasm.OpF64Const, Imm: math.Float64bits(fv)}
	default:
		return wasm.Instr{Op: wasm.OpI32Const, Imm: uint64(uint32(int32(iv)))}
	}
}

func (g *codegen) typeIdx(ft wasm.FuncType) uint32 {
	for i, t := range g.mod.Types {
		if t.Equal(ft) {
			return uint32(i)
		}
	}
	g.mod.Types = append(g.mod.Types, ft)
	return uint32(len(g.mod.Types) - 1)
}

// genAllocFunc emits the bump allocator:
//
//	__alloc(n) { old = heap; heap = old + ((n + 7) &^ 7); return old; }
func (g *codegen) genAllocFunc() wasm.Func {
	ft := wasm.FuncType{Params: []wasm.ValType{wasm.ValI32}, Results: []wasm.ValType{wasm.ValI32}}
	h := uint64(g.heapGlob)
	return wasm.Func{
		TypeIdx: g.typeIdx(ft),
		Locals:  []wasm.ValType{wasm.ValI32},
		Name:    "__alloc",
		Body: []wasm.Instr{
			{Op: wasm.OpGlobalGet, Imm: h},
			{Op: wasm.OpLocalTee, Imm: 1},
			{Op: wasm.OpLocalGet, Imm: 0},
			{Op: wasm.OpI32Const, Imm: 7},
			{Op: wasm.OpI32Add},
			{Op: wasm.OpI32Const, Imm: 0xFFFFFFF8}, // -8: align to 8
			{Op: wasm.OpI32And},
			{Op: wasm.OpI32Add},
			{Op: wasm.OpGlobalSet, Imm: h},
			{Op: wasm.OpLocalGet, Imm: 1},
		},
	}
}

func (g *codegen) genFunc(fd *funcDecl) (wasm.Func, error) {
	g.cur = fd
	g.body = nil
	g.depth = 0
	g.loops = nil

	ft := wasm.FuncType{}
	for _, p := range fd.params {
		ft.Params = append(ft.Params, valType(p.typ))
	}
	if fd.ret.Kind != KindVoid {
		ft.Results = []wasm.ValType{valType(fd.ret)}
	}

	for _, s := range fd.body {
		if err := g.genStmt(s); err != nil {
			return wasm.Func{}, err
		}
	}
	// Guarantee the implicit end leaves a value for non-void functions
	// whose control flow falls off the end.
	if fd.ret.Kind != KindVoid {
		g.emit(constInstr(fd.ret, 0, 0))
	}

	var locals []wasm.ValType
	for _, t := range fd.localTypes[len(fd.params):] {
		locals = append(locals, valType(t))
	}
	return wasm.Func{
		TypeIdx: g.typeIdx(ft),
		Locals:  locals,
		Body:    g.body,
		Name:    fd.name,
	}, nil
}

func (g *codegen) genStmt(s stmt) error {
	switch n := s.(type) {
	case *declStmt:
		if n.init != nil {
			if err := g.genExpr(n.init); err != nil {
				return err
			}
			g.emit(wasm.Instr{Op: wasm.OpLocalSet, Imm: uint64(n.slot)})
		}
		return nil

	case *assignStmt:
		if n.ptr != nil {
			pt := n.ptr.resultType()
			if err := g.genAddress(n.ptr, n.index, pt.Elem); err != nil {
				return err
			}
			if err := g.genExpr(n.val); err != nil {
				return err
			}
			g.emit(storeInstr(pt.Elem))
			return nil
		}
		if err := g.genExpr(n.val); err != nil {
			return err
		}
		if n.slot >= 0 {
			g.emit(wasm.Instr{Op: wasm.OpLocalSet, Imm: uint64(n.slot)})
		} else {
			g.emit(wasm.Instr{Op: wasm.OpGlobalSet, Imm: uint64(n.gidx)})
		}
		return nil

	case *ifStmt:
		if err := g.genExpr(n.cond); err != nil {
			return err
		}
		g.emit(wasm.Instr{Op: wasm.OpIf, Imm: uint64(wasm.BlockTypeEmpty)})
		g.depth++
		for _, st := range n.then {
			if err := g.genStmt(st); err != nil {
				return err
			}
		}
		if len(n.els_) > 0 {
			g.emit(wasm.Instr{Op: wasm.OpElse})
			for _, st := range n.els_ {
				if err := g.genStmt(st); err != nil {
					return err
				}
			}
		}
		g.depth--
		g.emit(wasm.Instr{Op: wasm.OpEnd})
		return nil

	case *whileStmt:
		return g.genLoop(nil, n.cond, nil, n.body)

	case *forStmt:
		if n.init != nil {
			if err := g.genStmt(n.init); err != nil {
				return err
			}
		}
		return g.genLoop(nil, n.cond, n.post, n.body)

	case *returnStmt:
		if n.val != nil {
			if err := g.genExpr(n.val); err != nil {
				return err
			}
		}
		g.emit(wasm.Instr{Op: wasm.OpReturn})
		return nil

	case *breakStmt:
		if len(g.loops) == 0 {
			return errAt(n.tok, "break outside loop")
		}
		lc := g.loops[len(g.loops)-1]
		g.emit(wasm.Instr{Op: wasm.OpBr, Imm: uint64(g.depth - lc.breakLevel - 1)})
		return nil

	case *continueStmt:
		if len(g.loops) == 0 {
			return errAt(n.tok, "continue outside loop")
		}
		lc := g.loops[len(g.loops)-1]
		g.emit(wasm.Instr{Op: wasm.OpBr, Imm: uint64(g.depth - lc.contLevel - 1)})
		return nil

	case *exprStmt:
		if err := g.genExpr(n.e); err != nil {
			return err
		}
		if n.e.resultType().Kind != KindVoid {
			g.emit(wasm.Instr{Op: wasm.OpDrop})
		}
		return nil
	}
	return fmt.Errorf("wcc: codegen: unknown statement %T", s)
}

// genLoop emits the canonical loop shape:
//
//	block B { loop L { cond? eqz br_if B; block C { body }; post; br L } }
//
// break branches to B, continue to C (so the post clause still runs).
func (g *codegen) genLoop(_ stmt, cond expr, post stmt, body []stmt) error {
	g.emit(wasm.Instr{Op: wasm.OpBlock, Imm: uint64(wasm.BlockTypeEmpty)})
	breakLevel := g.depth
	g.depth++
	g.emit(wasm.Instr{Op: wasm.OpLoop, Imm: uint64(wasm.BlockTypeEmpty)})
	loopLevel := g.depth
	g.depth++
	if cond != nil {
		if err := g.genExpr(cond); err != nil {
			return err
		}
		g.emit(wasm.Instr{Op: wasm.OpI32Eqz})
		g.emit(wasm.Instr{Op: wasm.OpBrIf, Imm: uint64(g.depth - breakLevel - 1)})
	}
	g.emit(wasm.Instr{Op: wasm.OpBlock, Imm: uint64(wasm.BlockTypeEmpty)})
	contLevel := g.depth
	g.depth++
	g.loops = append(g.loops, loopCtx{breakLevel: breakLevel, contLevel: contLevel})
	for _, st := range body {
		if err := g.genStmt(st); err != nil {
			return err
		}
	}
	g.loops = g.loops[:len(g.loops)-1]
	g.depth--
	g.emit(wasm.Instr{Op: wasm.OpEnd}) // C
	if post != nil {
		if err := g.genStmt(post); err != nil {
			return err
		}
	}
	g.emit(wasm.Instr{Op: wasm.OpBr, Imm: uint64(g.depth - loopLevel - 1)})
	g.depth--
	g.emit(wasm.Instr{Op: wasm.OpEnd}) // L
	g.depth--
	g.emit(wasm.Instr{Op: wasm.OpEnd}) // B
	return nil
}

// genAddress emits the effective address of ptr[index].
func (g *codegen) genAddress(ptr, index expr, elem ElemKind) error {
	if err := g.genExpr(ptr); err != nil {
		return err
	}
	if err := g.genExpr(index); err != nil {
		return err
	}
	if size := elem.Size(); size > 1 {
		g.emit(wasm.Instr{Op: wasm.OpI32Const, Imm: uint64(size)})
		g.emit(wasm.Instr{Op: wasm.OpI32Mul})
	}
	g.emit(wasm.Instr{Op: wasm.OpI32Add})
	return nil
}

func loadInstr(e ElemKind) wasm.Instr {
	align := uint64(0)
	switch e.Size() {
	case 2:
		align = 1
	case 4:
		align = 2
	case 8:
		align = 3
	}
	var op wasm.Opcode
	switch e {
	case ElemU8:
		op = wasm.OpI32Load8U
	case ElemI8:
		op = wasm.OpI32Load8S
	case ElemU16:
		op = wasm.OpI32Load16U
	case ElemI16:
		op = wasm.OpI32Load16S
	case ElemI32:
		op = wasm.OpI32Load
	case ElemI64:
		op = wasm.OpI64Load
	case ElemF32:
		op = wasm.OpF32Load
	case ElemF64:
		op = wasm.OpF64Load
	}
	return wasm.Instr{Op: op, Imm2: align}
}

func storeInstr(e ElemKind) wasm.Instr {
	align := uint64(0)
	switch e.Size() {
	case 2:
		align = 1
	case 4:
		align = 2
	case 8:
		align = 3
	}
	var op wasm.Opcode
	switch e {
	case ElemU8, ElemI8:
		op = wasm.OpI32Store8
	case ElemU16, ElemI16:
		op = wasm.OpI32Store16
	case ElemI32:
		op = wasm.OpI32Store
	case ElemI64:
		op = wasm.OpI64Store
	case ElemF32:
		op = wasm.OpF32Store
	case ElemF64:
		op = wasm.OpF64Store
	}
	return wasm.Instr{Op: op, Imm2: align}
}

func (g *codegen) genExpr(e expr) error {
	switch n := e.(type) {
	case *intLit:
		g.emit(constInstr(n.typ, n.val, float64(n.val)))
		return nil
	case *floatLit:
		g.emit(constInstr(n.typ, int64(n.val), n.val))
		return nil

	case *identExpr:
		switch {
		case n.isConst:
			g.emit(constInstr(n.typ, n.constVal, float64(n.constVal)))
		case n.local >= 0:
			g.emit(wasm.Instr{Op: wasm.OpLocalGet, Imm: uint64(n.local)})
		case n.global >= 0:
			g.emit(wasm.Instr{Op: wasm.OpGlobalGet, Imm: uint64(n.global)})
		case n.array >= 0:
			g.emit(wasm.Instr{Op: wasm.OpI32Const, Imm: uint64(g.prog.arrays[n.array].offset)})
		default:
			return errAt(n.tok, "unresolved identifier %s", n.name)
		}
		return nil

	case *indexExpr:
		pt := n.ptr.resultType()
		if err := g.genAddress(n.ptr, n.index, pt.Elem); err != nil {
			return err
		}
		g.emit(loadInstr(pt.Elem))
		return nil

	case *callExpr:
		if b, ok := builtinTable[n.name]; ok {
			switch b.kind {
			case bHeapBase:
				g.emit(wasm.Instr{Op: wasm.OpI32Const, Imm: uint64(g.heapBase)})
				return nil
			case bInline:
				for _, a := range n.args {
					if err := g.genExpr(a); err != nil {
						return err
					}
				}
				g.emit(wasm.Instr{Op: b.op})
				return nil
			case bHost:
				for _, a := range n.args {
					if err := g.genExpr(a); err != nil {
						return err
					}
				}
				g.emit(wasm.Instr{Op: wasm.OpCall, Imm: uint64(g.importIdx[n.name])})
				return nil
			case bAlloc:
				if err := g.genExpr(n.args[0]); err != nil {
					return err
				}
				g.emit(wasm.Instr{Op: wasm.OpCall, Imm: uint64(g.allocIdx)})
				return nil
			}
		}
		for _, a := range n.args {
			if err := g.genExpr(a); err != nil {
				return err
			}
		}
		g.emit(wasm.Instr{Op: wasm.OpCall, Imm: uint64(g.funcIdx[n.name])})
		return nil

	case *binExpr:
		return g.genBinExpr(n)

	case *unExpr:
		switch n.op {
		case "!":
			if err := g.genExpr(n.e); err != nil {
				return err
			}
			g.emit(wasm.Instr{Op: wasm.OpI32Eqz})
			return nil
		case "-":
			t := n.typ
			switch t.Kind {
			case KindF32:
				if err := g.genExpr(n.e); err != nil {
					return err
				}
				g.emit(wasm.Instr{Op: wasm.OpF32Neg})
			case KindF64:
				if err := g.genExpr(n.e); err != nil {
					return err
				}
				g.emit(wasm.Instr{Op: wasm.OpF64Neg})
			case KindI64:
				g.emit(wasm.Instr{Op: wasm.OpI64Const, Imm: 0})
				if err := g.genExpr(n.e); err != nil {
					return err
				}
				g.emit(wasm.Instr{Op: wasm.OpI64Sub})
			default:
				g.emit(wasm.Instr{Op: wasm.OpI32Const, Imm: 0})
				if err := g.genExpr(n.e); err != nil {
					return err
				}
				g.emit(wasm.Instr{Op: wasm.OpI32Sub})
			}
			return nil
		}
		return errAt(n.tok, "unknown unary operator %s", n.op)

	case *castExpr:
		if err := g.genExpr(n.e); err != nil {
			return err
		}
		return g.genCast(n.e.resultType(), n.to, n.tok)
	}
	return fmt.Errorf("wcc: codegen: unknown expression %T", e)
}

func (g *codegen) genBinExpr(n *binExpr) error {
	lt := n.l.resultType()

	// Short-circuit logic.
	switch n.op {
	case "&&":
		if err := g.genExpr(n.l); err != nil {
			return err
		}
		g.emit(wasm.Instr{Op: wasm.OpI32Eqz})
		g.emit(wasm.Instr{Op: wasm.OpIf, Imm: uint64(wasm.ValI32)})
		g.depth++
		g.emit(wasm.Instr{Op: wasm.OpI32Const, Imm: 0})
		g.emit(wasm.Instr{Op: wasm.OpElse})
		if err := g.genExpr(n.r); err != nil {
			return err
		}
		g.emit(wasm.Instr{Op: wasm.OpI32Eqz})
		g.emit(wasm.Instr{Op: wasm.OpI32Eqz})
		g.depth--
		g.emit(wasm.Instr{Op: wasm.OpEnd})
		return nil
	case "||":
		if err := g.genExpr(n.l); err != nil {
			return err
		}
		g.emit(wasm.Instr{Op: wasm.OpI32Eqz})
		g.emit(wasm.Instr{Op: wasm.OpIf, Imm: uint64(wasm.ValI32)})
		g.depth++
		if err := g.genExpr(n.r); err != nil {
			return err
		}
		g.emit(wasm.Instr{Op: wasm.OpI32Eqz})
		g.emit(wasm.Instr{Op: wasm.OpI32Eqz})
		g.emit(wasm.Instr{Op: wasm.OpElse})
		g.emit(wasm.Instr{Op: wasm.OpI32Const, Imm: 1})
		g.depth--
		g.emit(wasm.Instr{Op: wasm.OpEnd})
		return nil
	}

	// Pointer arithmetic scales the integer operand.
	if lt.Kind == KindPtr {
		if err := g.genExpr(n.l); err != nil {
			return err
		}
		if err := g.genExpr(n.r); err != nil {
			return err
		}
		if size := lt.Elem.Size(); size > 1 {
			g.emit(wasm.Instr{Op: wasm.OpI32Const, Imm: uint64(size)})
			g.emit(wasm.Instr{Op: wasm.OpI32Mul})
		}
		if n.op == "+" {
			g.emit(wasm.Instr{Op: wasm.OpI32Add})
		} else {
			g.emit(wasm.Instr{Op: wasm.OpI32Sub})
		}
		return nil
	}

	if err := g.genExpr(n.l); err != nil {
		return err
	}
	if err := g.genExpr(n.r); err != nil {
		return err
	}
	op, err := binOpcode(n.op, lt, n.tok)
	if err != nil {
		return err
	}
	g.emit(wasm.Instr{Op: op})
	return nil
}

func binOpcode(op string, t Type, tok token) (wasm.Opcode, error) {
	type key struct {
		op string
		k  Kind
	}
	table := map[key]wasm.Opcode{
		{"+", KindI32}: wasm.OpI32Add, {"-", KindI32}: wasm.OpI32Sub,
		{"*", KindI32}: wasm.OpI32Mul, {"/", KindI32}: wasm.OpI32DivS,
		{"%", KindI32}: wasm.OpI32RemS, {"&", KindI32}: wasm.OpI32And,
		{"|", KindI32}: wasm.OpI32Or, {"^", KindI32}: wasm.OpI32Xor,
		{"<<", KindI32}: wasm.OpI32Shl, {">>", KindI32}: wasm.OpI32ShrS,
		{"==", KindI32}: wasm.OpI32Eq, {"!=", KindI32}: wasm.OpI32Ne,
		{"<", KindI32}: wasm.OpI32LtS, {"<=", KindI32}: wasm.OpI32LeS,
		{">", KindI32}: wasm.OpI32GtS, {">=", KindI32}: wasm.OpI32GeS,

		{"+", KindI64}: wasm.OpI64Add, {"-", KindI64}: wasm.OpI64Sub,
		{"*", KindI64}: wasm.OpI64Mul, {"/", KindI64}: wasm.OpI64DivS,
		{"%", KindI64}: wasm.OpI64RemS, {"&", KindI64}: wasm.OpI64And,
		{"|", KindI64}: wasm.OpI64Or, {"^", KindI64}: wasm.OpI64Xor,
		{"<<", KindI64}: wasm.OpI64Shl, {">>", KindI64}: wasm.OpI64ShrS,
		{"==", KindI64}: wasm.OpI64Eq, {"!=", KindI64}: wasm.OpI64Ne,
		{"<", KindI64}: wasm.OpI64LtS, {"<=", KindI64}: wasm.OpI64LeS,
		{">", KindI64}: wasm.OpI64GtS, {">=", KindI64}: wasm.OpI64GeS,

		{"+", KindF32}: wasm.OpF32Add, {"-", KindF32}: wasm.OpF32Sub,
		{"*", KindF32}: wasm.OpF32Mul, {"/", KindF32}: wasm.OpF32Div,
		{"==", KindF32}: wasm.OpF32Eq, {"!=", KindF32}: wasm.OpF32Ne,
		{"<", KindF32}: wasm.OpF32Lt, {"<=", KindF32}: wasm.OpF32Le,
		{">", KindF32}: wasm.OpF32Gt, {">=", KindF32}: wasm.OpF32Ge,

		{"+", KindF64}: wasm.OpF64Add, {"-", KindF64}: wasm.OpF64Sub,
		{"*", KindF64}: wasm.OpF64Mul, {"/", KindF64}: wasm.OpF64Div,
		{"==", KindF64}: wasm.OpF64Eq, {"!=", KindF64}: wasm.OpF64Ne,
		{"<", KindF64}: wasm.OpF64Lt, {"<=", KindF64}: wasm.OpF64Le,
		{">", KindF64}: wasm.OpF64Gt, {">=", KindF64}: wasm.OpF64Ge,
	}
	if opc, ok := table[key{op, t.Kind}]; ok {
		return opc, nil
	}
	return 0, errAt(tok, "operator %s not defined for %s", op, t)
}

func (g *codegen) genCast(from, to Type, tok token) error {
	if from.Kind == KindPtr {
		from = i32T // pointers are i32 at runtime
	}
	if to.Kind == KindPtr {
		to = i32T
	}
	if from.Kind == to.Kind {
		return nil
	}
	type key struct{ from, to Kind }
	table := map[key]wasm.Opcode{
		{KindI32, KindI64}: wasm.OpI64ExtendI32S,
		{KindI32, KindF32}: wasm.OpF32ConvertI32S,
		{KindI32, KindF64}: wasm.OpF64ConvertI32S,
		{KindI64, KindI32}: wasm.OpI32WrapI64,
		{KindI64, KindF32}: wasm.OpF32ConvertI64S,
		{KindI64, KindF64}: wasm.OpF64ConvertI64S,
		{KindF32, KindI32}: wasm.OpI32TruncF32S,
		{KindF32, KindI64}: wasm.OpI64TruncF32S,
		{KindF32, KindF64}: wasm.OpF64PromoteF32,
		{KindF64, KindI32}: wasm.OpI32TruncF64S,
		{KindF64, KindI64}: wasm.OpI64TruncF64S,
		{KindF64, KindF32}: wasm.OpF32DemoteF64,
	}
	op, ok := table[key{from.Kind, to.Kind}]
	if !ok {
		return errAt(tok, "cannot cast %s to %s", from, to)
	}
	g.emit(wasm.Instr{Op: op})
	return nil
}

package wcc

import "fmt"

type parser struct {
	toks   []token
	pos    int
	consts map[string]int64
	prog   *program
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[p.pos+1] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(text string) bool {
	if p.cur().kind == tokPunct && p.cur().text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) (token, error) {
	t := p.cur()
	if t.kind == tokPunct && t.text == text {
		p.pos++
		return t, nil
	}
	return t, errAt(t, "expected %q, found %s", text, t)
}

func (p *parser) acceptIdent(name string) bool {
	if p.cur().kind == tokIdent && p.cur().text == name {
		p.pos++
		return true
	}
	return false
}

var scalarTypes = map[string]Type{
	"void": {Kind: KindVoid},
	"i32":  {Kind: KindI32},
	"i64":  {Kind: KindI64},
	"f32":  {Kind: KindF32},
	"f64":  {Kind: KindF64},
}

var elemTypes = map[string]ElemKind{
	"u8": ElemU8, "i8": ElemI8, "u16": ElemU16, "i16": ElemI16,
	"i32": ElemI32, "i64": ElemI64, "f32": ElemF32, "f64": ElemF64,
}

// isTypeStart reports whether the token could begin a type.
func isTypeStart(t token) bool {
	if t.kind != tokIdent {
		return false
	}
	_, scalar := scalarTypes[t.text]
	_, elem := elemTypes[t.text]
	return scalar || elem
}

// parseType parses a scalar or pointer type.
func (p *parser) parseType() (Type, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return Type{}, errAt(t, "expected type, found %s", t)
	}
	if ek, ok := elemTypes[t.text]; ok {
		if p.peek().kind == tokPunct && p.peek().text == "*" {
			p.pos += 2
			return Type{Kind: KindPtr, Elem: ek}, nil
		}
	}
	if st, ok := scalarTypes[t.text]; ok {
		p.pos++
		return st, nil
	}
	return Type{}, errAt(t, "expected type, found %s", t)
}

// parse builds the AST for a compilation unit.
func parse(src string) (*program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, consts: make(map[string]int64), prog: &program{}}
	for p.cur().kind != tokEOF {
		if err := p.parseTopDecl(); err != nil {
			return nil, err
		}
	}
	return p.prog, nil
}

func (p *parser) parseTopDecl() error {
	switch {
	case p.acceptIdent("const"):
		return p.parseConst()
	case p.acceptIdent("static"):
		return p.parseStatic()
	case p.acceptIdent("global"):
		return p.parseGlobal()
	default:
		exported := p.acceptIdent("export")
		return p.parseFunc(exported)
	}
}

func (p *parser) parseConst() error {
	name := p.next()
	if name.kind != tokIdent {
		return errAt(name, "expected constant name")
	}
	if _, err := p.expect("="); err != nil {
		return err
	}
	v, err := p.parseConstExpr()
	if err != nil {
		return err
	}
	if _, err := p.expect(";"); err != nil {
		return err
	}
	if _, dup := p.consts[name.text]; dup {
		return errAt(name, "duplicate constant %s", name.text)
	}
	p.consts[name.text] = v
	p.prog.consts = append(p.prog.consts, constDecl{name: name.text, val: v})
	return nil
}

// parseConstExpr evaluates a compile-time integer expression
// (+ - * / % << >> and parentheses over literals and prior consts).
func (p *parser) parseConstExpr() (int64, error) {
	e, err := p.parseExpr()
	if err != nil {
		return 0, err
	}
	return p.evalConst(e)
}

func (p *parser) evalConst(e expr) (int64, error) {
	switch n := e.(type) {
	case *intLit:
		return n.val, nil
	case *identExpr:
		if v, ok := p.consts[n.name]; ok {
			return v, nil
		}
		return 0, errAt(n.pos(), "%s is not a compile-time constant", n.name)
	case *unExpr:
		v, err := p.evalConst(n.e)
		if err != nil {
			return 0, err
		}
		if n.op == "-" {
			return -v, nil
		}
		return 0, errAt(n.pos(), "operator %s not constant-foldable", n.op)
	case *binExpr:
		l, err := p.evalConst(n.l)
		if err != nil {
			return 0, err
		}
		r, err := p.evalConst(n.r)
		if err != nil {
			return 0, err
		}
		switch n.op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, errAt(n.pos(), "constant division by zero")
			}
			return l / r, nil
		case "%":
			if r == 0 {
				return 0, errAt(n.pos(), "constant division by zero")
			}
			return l % r, nil
		case "<<":
			return l << uint(r&63), nil
		case ">>":
			return l >> uint(r&63), nil
		}
		return 0, errAt(n.pos(), "operator %s not constant-foldable", n.op)
	}
	return 0, fmt.Errorf("wcc: expression is not a compile-time constant")
}

func (p *parser) parseStatic() error {
	tok := p.cur()
	elemName := p.next()
	if elemName.kind != tokIdent {
		return errAt(elemName, "expected element type")
	}
	ek, ok := elemTypes[elemName.text]
	if !ok {
		return errAt(elemName, "invalid array element type %s", elemName.text)
	}
	name := p.next()
	if name.kind != tokIdent {
		return errAt(name, "expected array name")
	}
	if _, err := p.expect("["); err != nil {
		return err
	}
	size, err := p.parseConstExpr()
	if err != nil {
		return err
	}
	if size <= 0 {
		return errAt(name, "array %s has non-positive size %d", name.text, size)
	}
	if _, err := p.expect("]"); err != nil {
		return err
	}
	if _, err := p.expect(";"); err != nil {
		return err
	}
	p.prog.arrays = append(p.prog.arrays, arrayDecl{tok: tok, name: name.text, elem: ek, size: size})
	return nil
}

func (p *parser) parseGlobal() error {
	tok := p.cur()
	typ, err := p.parseType()
	if err != nil {
		return err
	}
	if typ.Kind == KindVoid || typ.Kind == KindPtr {
		return errAt(tok, "globals must be scalar")
	}
	name := p.next()
	if name.kind != tokIdent {
		return errAt(name, "expected global name")
	}
	if _, err := p.expect("="); err != nil {
		return err
	}
	init, err := p.parseExpr()
	if err != nil {
		return err
	}
	if _, err := p.expect(";"); err != nil {
		return err
	}
	p.prog.globals = append(p.prog.globals, globalDecl{tok: tok, name: name.text, typ: typ, init: init})
	return nil
}

func (p *parser) parseFunc(exported bool) error {
	tok := p.cur()
	ret, err := p.parseType()
	if err != nil {
		return err
	}
	name := p.next()
	if name.kind != tokIdent {
		return errAt(name, "expected function name")
	}
	if _, err := p.expect("("); err != nil {
		return err
	}
	var params []param
	for !p.accept(")") {
		if len(params) > 0 {
			if _, err := p.expect(","); err != nil {
				return err
			}
		}
		pt, err := p.parseType()
		if err != nil {
			return err
		}
		pn := p.next()
		if pn.kind != tokIdent {
			return errAt(pn, "expected parameter name")
		}
		params = append(params, param{name: pn.text, typ: pt})
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	p.prog.funcs = append(p.prog.funcs, funcDecl{
		tok: tok, name: name.text, params: params, ret: ret, body: body, exported: exported,
	})
	return nil
}

func (p *parser) parseBlock() ([]stmt, error) {
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	var stmts []stmt
	for !p.accept("}") {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

func (p *parser) parseStmt() (stmt, error) {
	t := p.cur()
	switch {
	case t.kind == tokIdent && t.text == "if":
		p.pos++
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els []stmt
		if p.acceptIdent("else") {
			if p.cur().kind == tokIdent && p.cur().text == "if" {
				s, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				els = []stmt{s}
			} else if els, err = p.parseBlock(); err != nil {
				return nil, err
			}
		}
		return &ifStmt{cond: cond, then: then, els_: els}, nil

	case t.kind == tokIdent && t.text == "while":
		p.pos++
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &whileStmt{cond: cond, body: body}, nil

	case t.kind == tokIdent && t.text == "for":
		p.pos++
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		var init, post stmt
		var cond expr
		var err error
		if !p.accept(";") {
			if init, err = p.parseSimpleStmt(); err != nil {
				return nil, err
			}
			if _, err = p.expect(";"); err != nil {
				return nil, err
			}
		}
		if !p.accept(";") {
			if cond, err = p.parseExpr(); err != nil {
				return nil, err
			}
			if _, err = p.expect(";"); err != nil {
				return nil, err
			}
		}
		if p.cur().kind != tokPunct || p.cur().text != ")" {
			if post, err = p.parseSimpleStmt(); err != nil {
				return nil, err
			}
		}
		if _, err = p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &forStmt{init: init, cond: cond, post: post, body: body}, nil

	case t.kind == tokIdent && t.text == "return":
		p.pos++
		rs := &returnStmt{tok: t}
		if !p.accept(";") {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.val = v
			if _, err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		return rs, nil

	case t.kind == tokIdent && t.text == "break":
		p.pos++
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &breakStmt{tok: t}, nil

	case t.kind == tokIdent && t.text == "continue":
		p.pos++
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &continueStmt{tok: t}, nil
	}

	s, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return s, nil
}

// parseSimpleStmt parses a declaration, assignment, or expression statement
// (without the trailing semicolon, so it also serves for-clauses).
func (p *parser) parseSimpleStmt() (stmt, error) {
	t := p.cur()
	// Declaration: starts with a type.
	if isTypeStart(t) && !(p.peek().kind == tokPunct && p.peek().text == "(") {
		// Distinguish `i32 x = ...` from an expression like `i32(...)`:
		// WCC has no such call form, so a type token always means a decl
		// unless it is a cast, which can only appear inside parentheses.
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if typ.Kind == KindVoid {
			return nil, errAt(t, "cannot declare void variable")
		}
		name := p.next()
		if name.kind != tokIdent {
			return nil, errAt(name, "expected variable name")
		}
		ds := &declStmt{tok: name, typ: typ, name: name.text, slot: -1}
		if p.accept("=") {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ds.init = v
		}
		return ds, nil
	}

	// Assignment or expression statement.
	if t.kind == tokIdent {
		// ident = expr | ident[expr] = expr | call(...)
		if p.peek().kind == tokPunct && p.peek().text == "=" {
			name := p.next()
			p.pos++ // '='
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &assignStmt{tok: name, name: name.text, slot: -1, gidx: -1, val: v}, nil
		}
	}
	// General: parse an expression; if followed by '=', it must be an index
	// expression target.
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.accept("=") {
		ie, ok := e.(*indexExpr)
		if !ok {
			return nil, errAt(t, "invalid assignment target")
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &assignStmt{tok: t, slot: -1, gidx: -1, ptr: ie.ptr, index: ie.index, val: v}, nil
	}
	return &exprStmt{e: e}, nil
}

// ---- expression parsing (precedence climbing) ----

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseExpr() (expr, error) { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return l, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return l, nil
		}
		p.pos++
		r, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		l = &binExpr{baseExpr: baseExpr{tok: t}, op: t.text, l: l, r: r}
	}
}

func (p *parser) parseUnary() (expr, error) {
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "-", "!":
			p.pos++
			e, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &unExpr{baseExpr: baseExpr{tok: t}, op: t.text, e: e}, nil
		case "(":
			// Cast: "(" type ")" unary or "(" type "*" ")" unary.
			if isTypeStart(p.peek()) {
				_, scalar := scalarTypes[p.peek().text]
				_, elem := elemTypes[p.peek().text]
				isScalarCast := scalar &&
					p.toks[p.pos+2].kind == tokPunct && p.toks[p.pos+2].text == ")"
				isPtrCast := elem &&
					p.toks[p.pos+2].kind == tokPunct && p.toks[p.pos+2].text == "*" &&
					p.toks[p.pos+3].kind == tokPunct && p.toks[p.pos+3].text == ")"
				if isScalarCast || isPtrCast {
					p.pos++ // (
					to, err := p.parseType()
					if err != nil {
						return nil, err
					}
					if _, err := p.expect(")"); err != nil {
						return nil, err
					}
					e, err := p.parseUnary()
					if err != nil {
						return nil, err
					}
					return &castExpr{baseExpr: baseExpr{tok: t}, to: to, e: e}, nil
				}
			}
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct || t.text != "[" {
			return e, nil
		}
		p.pos++
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		e = &indexExpr{baseExpr: baseExpr{tok: t}, ptr: e, index: idx}
	}
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.pos++
		return &intLit{baseExpr: baseExpr{tok: t}, val: t.intVal}, nil
	case tokFloat:
		p.pos++
		return &floatLit{baseExpr: baseExpr{tok: t}, val: t.floatVal}, nil
	case tokIdent:
		p.pos++
		if p.accept("(") {
			ce := &callExpr{baseExpr: baseExpr{tok: t}, name: t.text}
			for !p.accept(")") {
				if len(ce.args) > 0 {
					if _, err := p.expect(","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				ce.args = append(ce.args, a)
			}
			return ce, nil
		}
		return &identExpr{baseExpr: baseExpr{tok: t}, name: t.text, local: -1, global: -1, array: -1}, nil
	case tokPunct:
		if t.text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, errAt(t, "unexpected %s in expression", t)
}

package wcc_test

import (
	"math"
	"strings"
	"testing"

	"sledge/internal/abi"
	"sledge/internal/engine"
	"sledge/internal/wcc"
)

// run compiles src and invokes fn with args in a fresh sandbox.
func run(t *testing.T, src, fn string, args ...uint64) uint64 {
	t.Helper()
	res, err := wcc.Compile(src, wcc.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	cm, err := engine.CompileBinary(res.Binary, abi.Registry(), engine.Config{})
	if err != nil {
		t.Fatalf("engine.CompileBinary: %v", err)
	}
	inst := cm.Instantiate()
	inst.HostData = abi.NewContext(nil)
	v, err := inst.Invoke(fn, args...)
	if err != nil {
		t.Fatalf("Invoke(%s): %v", fn, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	src := `
export i32 calc(i32 a, i32 b) {
	i32 x = a * 3 + b / 2 - 1;
	i32 y = (a + b) % 7;
	return x * 10 + y;
}
`
	// a=5,b=8: x = 15+4-1 = 18; y = 13%7 = 6; 186
	if got := run(t, src, "calc", 5, 8); got != 186 {
		t.Errorf("calc(5,8) = %d, want 186", got)
	}
}

func TestLoopsAndControl(t *testing.T) {
	src := `
export i32 sum_even(i32 n) {
	i32 acc = 0;
	for (i32 i = 0; i < n; i = i + 1) {
		if (i % 2 != 0) {
			continue;
		}
		if (i > 100) {
			break;
		}
		acc = acc + i;
	}
	return acc;
}

export i32 count_down(i32 n) {
	i32 steps = 0;
	while (n > 1) {
		if (n % 2 == 0) {
			n = n / 2;
		} else {
			n = 3 * n + 1;
		}
		steps = steps + 1;
	}
	return steps;
}
`
	if got := run(t, src, "sum_even", 10); got != 20 {
		t.Errorf("sum_even(10) = %d, want 20", got)
	}
	// break path: evens 0..100 sum = 2550
	if got := run(t, src, "sum_even", 1000); got != 2550 {
		t.Errorf("sum_even(1000) = %d, want 2550", got)
	}
	// Collatz(27) = 111 steps
	if got := run(t, src, "count_down", 27); got != 111 {
		t.Errorf("count_down(27) = %d, want 111", got)
	}
}

func TestStaticArraysAndConsts(t *testing.T) {
	src := `
const N = 16;
static f64 A[N];
static i32 idx[N];

export f64 fill_and_sum() {
	for (i32 i = 0; i < N; i = i + 1) {
		A[i] = (f64) i * 1.5;
		idx[i] = N - 1 - i;
	}
	f64 acc = 0.0;
	for (i32 i = 0; i < N; i = i + 1) {
		acc = acc + A[idx[i]];
	}
	return acc;
}
`
	got := run(t, src, "fill_and_sum")
	want := 0.0
	for i := 0; i < 16; i++ {
		want += float64(i) * 1.5
	}
	if math.Float64frombits(got) != want {
		t.Errorf("fill_and_sum = %v, want %v", math.Float64frombits(got), want)
	}
}

func TestPointersAndAlloc(t *testing.T) {
	src := `
export i32 vecsum(i32 n) {
	i32* v = alloc(n * 4);
	for (i32 i = 0; i < n; i = i + 1) {
		v[i] = i * i;
	}
	i32 acc = 0;
	i32* p = v + 1; // pointer arithmetic: skip first element
	for (i32 i = 0; i < n - 1; i = i + 1) {
		acc = acc + p[i];
	}
	return acc;
}

export i32 bytes_roundtrip() {
	u8* b = alloc(8);
	b[0] = 200;      // stores as byte
	b[1] = 1;
	i16* h = (i16*) (b + 2);
	h[0] = -2;
	return b[0] + b[1] * 256 + h[0];
}
`
	// sum of i^2 for i=1..9 = 285
	if got := run(t, src, "vecsum", 10); got != 285 {
		t.Errorf("vecsum(10) = %d, want 285", got)
	}
	// 200 + 256 - 2 = 454
	if got := run(t, src, "bytes_roundtrip"); got != 454 {
		t.Errorf("bytes_roundtrip = %d, want 454", got)
	}
}

func TestRecursionAndMultipleFunctions(t *testing.T) {
	src := `
i32 fib(i32 n) {
	if (n < 2) {
		return n;
	}
	return fib(n - 1) + fib(n - 2);
}

export i32 fib10() {
	return fib(10);
}
`
	if got := run(t, src, "fib10"); got != 55 {
		t.Errorf("fib10 = %d, want 55", got)
	}
}

func TestCastsAndFloats(t *testing.T) {
	src := `
export f64 norm(f64 x, f64 y) {
	return sqrt(x * x + y * y);
}

export i32 trunc_mix(f64 x) {
	i64 big = (i64) x * 1000;
	return (i32) big;
}

export f64 hostmath(f64 x) {
	return exp(log(x)) + pow(x, 2.0);
}
`
	if got := math.Float64frombits(run(t, src, "norm", math.Float64bits(3), math.Float64bits(4))); got != 5 {
		t.Errorf("norm(3,4) = %v, want 5", got)
	}
	if got := run(t, src, "trunc_mix", math.Float64bits(12.9)); got != 12000 {
		t.Errorf("trunc_mix(12.9) = %d, want 12000", got)
	}
	got := math.Float64frombits(run(t, src, "hostmath", math.Float64bits(3)))
	if math.Abs(got-12) > 1e-9 {
		t.Errorf("hostmath(3) = %v, want 12", got)
	}
}

func TestLogicalOps(t *testing.T) {
	src := `
global i32 effects = 0;

i32 bump() {
	effects = effects + 1;
	return 1;
}

export i32 shortcircuit(i32 a) {
	i32 r = 0;
	if (a > 0 && bump() == 1) {
		r = r + 1;
	}
	if (a > 0 || bump() == 1) {
		r = r + 2;
	}
	return r * 100 + effects;
}

export i32 logic(i32 a, i32 b) {
	return (a == 1 || b == 1) && !(a == b);
}
`
	// a=1: both conds true; bump called once (from &&): 300 + 1
	if got := run(t, src, "shortcircuit", 1); got != 301 {
		t.Errorf("shortcircuit(1) = %d, want 301", got)
	}
	// a=0: && skips bump, || calls bump: r=2, effects=1
	if got := run(t, src, "shortcircuit", 0); got != 201 {
		t.Errorf("shortcircuit(0) = %d, want 201", got)
	}
	if got := run(t, src, "logic", 1, 0); got != 1 {
		t.Errorf("logic(1,0) = %d, want 1", got)
	}
	if got := run(t, src, "logic", 1, 1); got != 0 {
		t.Errorf("logic(1,1) = %d, want 0", got)
	}
}

func TestSysReadWriteEcho(t *testing.T) {
	src := `
static u8 buf[1024];

export i32 main() {
	i32 n = sys_read(buf, 1024);
	sys_write(buf, n);
	return 0;
}
`
	res, err := wcc.Compile(src, wcc.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	cm, err := engine.CompileBinary(res.Binary, abi.Registry(), engine.Config{})
	if err != nil {
		t.Fatalf("engine compile: %v", err)
	}
	inst := cm.Instantiate()
	ctx := abi.NewContext([]byte("hello sledge"))
	inst.HostData = ctx
	if _, err := inst.Invoke("main"); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if string(ctx.Response) != "hello sledge" {
		t.Errorf("Response = %q, want %q", ctx.Response, "hello sledge")
	}
}

func TestKVRoundTrip(t *testing.T) {
	src := `
static u8 key[8];
static u8 val[64];

export i32 main() {
	key[0] = 107; // 'k'
	val[0] = 118; // 'v'
	val[1] = 49;  // '1'
	sys_kv_set(key, 1, val, 2);
	i32 n = sys_kv_get(key, 1, val, 64);
	sys_write(val, n);
	return n;
}
`
	res, err := wcc.Compile(src, wcc.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	cm, err := engine.CompileBinary(res.Binary, abi.Registry(), engine.Config{})
	if err != nil {
		t.Fatalf("engine compile: %v", err)
	}
	inst := cm.Instantiate()
	ctx := abi.NewContext(nil)
	ctx.KV = abi.NewMapKV()
	inst.HostData = ctx
	v, err := inst.Invoke("main")
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if v != 2 || string(ctx.Response) != "v1" {
		t.Errorf("kv roundtrip: n=%d resp=%q", v, ctx.Response)
	}
}

func TestArrayInfoAndDataInit(t *testing.T) {
	src := `
static f64 W[4];

export f64 dotself() {
	f64 acc = 0.0;
	for (i32 i = 0; i < 4; i = i + 1) {
		acc = acc + W[i] * W[i];
	}
	return acc;
}
`
	weights := make([]byte, 32)
	for i, v := range []float64{1, 2, 3, 4} {
		bits := math.Float64bits(v)
		for j := 0; j < 8; j++ {
			weights[i*8+j] = byte(bits >> (8 * j))
		}
	}
	res, err := wcc.Compile(src, wcc.Options{Data: map[string][]byte{"W": weights}})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	info, ok := res.Arrays["W"]
	if !ok || info.Bytes != 32 || info.Count != 4 {
		t.Fatalf("ArrayInfo = %+v", info)
	}
	cm, err := engine.CompileBinary(res.Binary, abi.Registry(), engine.Config{})
	if err != nil {
		t.Fatalf("engine compile: %v", err)
	}
	inst := cm.Instantiate()
	inst.HostData = abi.NewContext(nil)
	v, err := inst.Invoke("dotself")
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if got := math.Float64frombits(v); got != 30 {
		t.Errorf("dotself = %v, want 30", got)
	}
}

func TestGlobalsPersistWithinInstance(t *testing.T) {
	src := `
global i64 counter = 10;

export i64 bump3() {
	counter = counter + 1;
	counter = counter + 1;
	counter = counter + 1;
	return counter;
}
`
	if got := run(t, src, "bump3"); got != 13 {
		t.Errorf("bump3 = %d, want 13", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		part string
	}{
		{"undefined var", `export i32 f() { return x; }`, "undefined identifier x"},
		{"type mismatch", `export i32 f() { f64 x = 1.5; return x; }`, "cannot return"},
		{"bad call arity", `export i32 f() { return sqrt(); }`, "takes 1 arguments"},
		{"undefined func", `export i32 f() { return g(7); }`, "undefined function g"},
		{"break outside loop", `export void f() { break; }`, "break outside loop"},
		{"duplicate var", `export void f() { i32 x = 1; i32 x = 2; }`, "duplicate variable"},
		{"index non-pointer", `export i32 f(i32 x) { return x[0]; }`, "cannot index"},
		{"float mod", `export f64 f(f64 x) { return x % 2.0; }`, "integer operands"},
		{"void value", `void g() { } export i32 f() { i32 x = g(); return x; }`, "cannot initialize"},
		{"syntax", `export i32 f( { }`, "expected"},
		{"non-const array size", `export void f() {} static f64 A[f()];`, "not a compile-time constant"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := wcc.Compile(c.src, wcc.Options{})
			if err == nil {
				t.Fatal("compile succeeded unexpectedly")
			}
			if !strings.Contains(err.Error(), c.part) {
				t.Errorf("error %q does not contain %q", err, c.part)
			}
		})
	}
}

func TestNestedLoopsMatrixMultiply(t *testing.T) {
	src := `
const N = 8;
static f64 A[N*N];
static f64 B[N*N];
static f64 C[N*N];

export f64 matmul() {
	for (i32 i = 0; i < N; i = i + 1) {
		for (i32 j = 0; j < N; j = j + 1) {
			A[i*N+j] = (f64) (i + j);
			B[i*N+j] = (f64) (i - j);
			C[i*N+j] = 0.0;
		}
	}
	for (i32 i = 0; i < N; i = i + 1) {
		for (i32 j = 0; j < N; j = j + 1) {
			for (i32 k = 0; k < N; k = k + 1) {
				C[i*N+j] = C[i*N+j] + A[i*N+k] * B[k*N+j];
			}
		}
	}
	f64 trace = 0.0;
	for (i32 i = 0; i < N; i = i + 1) {
		trace = trace + C[i*N+i];
	}
	return trace;
}
`
	got := math.Float64frombits(run(t, src, "matmul"))
	// Reference computation in Go.
	n := 8
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	cc := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = float64(i + j)
			b[i*n+j] = float64(i - j)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				cc[i*n+j] += a[i*n+k] * b[k*n+j]
			}
		}
	}
	want := 0.0
	for i := 0; i < n; i++ {
		want += cc[i*n+i]
	}
	if got != want {
		t.Errorf("matmul trace = %v, want %v", got, want)
	}
}

func TestTierEquivalenceOnWCCProgram(t *testing.T) {
	src := `
const N = 32;
static i32 sieve[N];

export i32 primes() {
	for (i32 i = 0; i < N; i = i + 1) {
		sieve[i] = 1;
	}
	i32 count = 0;
	for (i32 i = 2; i < N; i = i + 1) {
		if (sieve[i] == 1) {
			count = count + 1;
			for (i32 j = i * i; j < N; j = j + i) {
				sieve[j] = 0;
			}
		}
	}
	return count;
}
`
	res, err := wcc.Compile(src, wcc.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	var results []uint64
	for _, cfg := range []engine.Config{
		{Tier: engine.TierOptimized, Bounds: engine.BoundsGuard},
		{Tier: engine.TierOptimized, Bounds: engine.BoundsSoftware},
		{Tier: engine.TierOptimized, Bounds: engine.BoundsMPX},
		{Tier: engine.TierNaive, Bounds: engine.BoundsSoftwareFused},
	} {
		cm, err := engine.CompileBinary(res.Binary, abi.Registry(), cfg)
		if err != nil {
			t.Fatalf("engine compile (%v): %v", cfg, err)
		}
		inst := cm.Instantiate()
		inst.HostData = abi.NewContext(nil)
		v, err := inst.Invoke("primes")
		if err != nil {
			t.Fatalf("Invoke (%v): %v", cfg, err)
		}
		results = append(results, v)
	}
	// π(31) = 11 primes below 32.
	for i, v := range results {
		if v != 11 {
			t.Errorf("config %d: primes = %d, want 11", i, v)
		}
	}
}

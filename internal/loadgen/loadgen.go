// Package loadgen is the closed-loop HTTP load generator used by the
// serverless experiments — the reproduction's Apache Bench: C concurrent
// connections issue N total POST requests and the harness reports
// throughput plus mean/median/p99 latency, the quantities in the paper's
// Figures 6–8.
package loadgen

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"sledge/internal/stats"
)

// Options configures one load run.
type Options struct {
	// URL is the target, e.g. "http://127.0.0.1:8080/ping".
	URL string
	// Concurrency is the number of concurrent connections (ab -c).
	Concurrency int
	// Requests is the total request count (ab -n).
	Requests int
	// Body is the request payload; BodyFn overrides it per request.
	Body   []byte
	BodyFn func(i int) []byte
	// Timeout bounds each request. Default 30 s.
	Timeout time.Duration
	// Validate, if set, checks each response body.
	Validate func(body []byte) error
}

// Result reports one load run.
type Result struct {
	Latencies []time.Duration
	Summary   stats.Summary
	Elapsed   time.Duration
	Errors    int
	// ThroughputRPS is completed requests per second of wall time.
	ThroughputRPS float64
	// BytesIn totals response body bytes.
	BytesIn int64
}

// Run executes the load. It uses a shared keep-alive transport with one
// idle connection per concurrent worker, like ab's connection reuse.
func Run(opts Options) (Result, error) {
	if opts.Concurrency <= 0 {
		opts.Concurrency = 1
	}
	if opts.Requests <= 0 {
		opts.Requests = 1
	}
	if opts.Timeout == 0 {
		opts.Timeout = 30 * time.Second
	}
	transport := &http.Transport{
		MaxIdleConns:        opts.Concurrency,
		MaxIdleConnsPerHost: opts.Concurrency,
		IdleConnTimeout:     time.Minute,
		DisableCompression:  true,
	}
	client := &http.Client{Transport: transport, Timeout: opts.Timeout}
	defer transport.CloseIdleConnections()

	var (
		next     atomic.Int64
		errs     atomic.Int64
		bytesIn  atomic.Int64
		latMu    sync.Mutex
		all      = make([]time.Duration, 0, opts.Requests)
		wg       sync.WaitGroup
		firstErr atomic.Pointer[error]
	)
	start := time.Now()
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, opts.Requests/opts.Concurrency+1)
			for {
				i := int(next.Add(1)) - 1
				if i >= opts.Requests {
					break
				}
				body := opts.Body
				if opts.BodyFn != nil {
					body = opts.BodyFn(i)
				}
				t0 := time.Now()
				resp, err := client.Post(opts.URL, "application/octet-stream", bytes.NewReader(body))
				if err != nil {
					errs.Add(1)
					e := fmt.Errorf("request %d: %w", i, err)
					firstErr.CompareAndSwap(nil, &e)
					continue
				}
				data, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				lat := time.Since(t0)
				if err != nil || resp.StatusCode != http.StatusOK {
					errs.Add(1)
					e := fmt.Errorf("request %d: status %d: %v", i, resp.StatusCode, err)
					firstErr.CompareAndSwap(nil, &e)
					continue
				}
				if opts.Validate != nil {
					if verr := opts.Validate(data); verr != nil {
						errs.Add(1)
						e := fmt.Errorf("request %d: %w", i, verr)
						firstErr.CompareAndSwap(nil, &e)
						continue
					}
				}
				bytesIn.Add(int64(len(data)))
				local = append(local, lat)
			}
			latMu.Lock()
			all = append(all, local...)
			latMu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{
		Latencies: all,
		Summary:   stats.Summarize(all),
		Elapsed:   elapsed,
		Errors:    int(errs.Load()),
		BytesIn:   bytesIn.Load(),
	}
	if elapsed > 0 {
		res.ThroughputRPS = float64(len(all)) / elapsed.Seconds()
	}
	if ep := firstErr.Load(); ep != nil && len(all) == 0 {
		return res, *ep
	}
	return res, nil
}

// Package loadgen is the HTTP load generator used by the serverless
// experiments. It has two modes:
//
//   - Closed loop (the reproduction's Apache Bench): C concurrent
//     connections issue N total POST requests; throughput tracks service
//     rate because each worker waits for its response before sending the
//     next request. This is the mode behind the paper's Figures 6–8.
//   - Open loop (Rate > 0): requests are issued on a fixed schedule
//     regardless of completions, so offered load can exceed capacity —
//     the overload regime the admission-control experiments drive.
//
// Open-loop results separate goodput (200s) from shed responses (429/503,
// the admission controller doing its job) and errors.
package loadgen

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sledge/internal/stats"
)

// PipelineURL joins a node base address and a registered pipeline name into
// the chain's invoke URL, e.g. ("http://127.0.0.1:8080", "imgchain") →
// "http://127.0.0.1:8080/p/imgchain".
func PipelineURL(base, name string) string {
	return strings.TrimSuffix(base, "/") + "/p/" + name
}

// Target is one weighted endpoint of a multi-target run.
type Target struct {
	// URL is the endpoint, e.g. "http://127.0.0.1:8080/ping".
	URL string
	// Weight is the endpoint's share of requests relative to the other
	// targets. Non-positive weights count as 1.
	Weight int
}

// Options configures one load run.
type Options struct {
	// URL is the target, e.g. "http://127.0.0.1:8080/ping".
	URL string
	// Pipeline, when set, selects pipeline target mode: requests invoke the
	// named registered chain (POST <base>/p/<name>) and the recorded
	// percentiles are end-to-end chain latencies — stage 0 admission to
	// stage N-1's reply. URL (and each Target URL) is treated as the node
	// base address; the pipeline path is appended with PipelineURL.
	Pipeline string
	// Targets, when non-empty, selects multi-target mode: request i goes to
	// the endpoint a smooth weighted round-robin schedule assigns it, so
	// load can be aimed at a cluster router (one target) or sprayed across
	// individual nodes (the ablation baseline) with the same generator.
	// URL is ignored when Targets is set.
	Targets []Target
	// TargetFn, when set, picks the endpoint for request i and overrides
	// both URL and Targets. It exists for fleet-scale skew scenarios —
	// Zipf-over-N-modules, where expanding a weighted schedule across
	// thousands of endpoints is impractical — so callers typically index a
	// precomputed rank schedule. It may be called from multiple worker
	// goroutines in closed-loop mode and must be safe for concurrent use;
	// per-endpoint tallies (TargetCounts) are skipped in this mode to keep
	// the per-request cost flat at fleet scale.
	TargetFn func(i int) string
	// sched is the expanded round-robin schedule, built once per Run.
	sched []string
	// Concurrency is the number of concurrent connections (ab -c).
	Concurrency int
	// Requests is the total request count (ab -n). In open-loop mode it
	// bounds issued requests when positive.
	Requests int
	// Body is the request payload; BodyFn overrides it per request.
	Body   []byte
	BodyFn func(i int) []byte
	// Timeout bounds each request. Default 30 s.
	Timeout time.Duration
	// Validate, if set, checks each 200 response body.
	Validate func(body []byte) error
	// Header adds request headers (e.g. the deadline header).
	Header map[string]string

	// Rate, when positive, selects open-loop mode: requests are issued at
	// Rate per second for Duration (or until Requests are issued),
	// regardless of completions.
	Rate float64
	// Duration bounds an open-loop run. Default 5 s.
	Duration time.Duration
	// MaxOutstanding bounds concurrent open-loop requests; issue ticks
	// finding no free slot are dropped (counted, not sent — a full client
	// is itself an overload symptom). Default 4096.
	MaxOutstanding int
}

// Result reports one load run.
type Result struct {
	// Latencies holds per-request latency of successful (200) requests.
	Latencies []time.Duration
	Summary   stats.Summary
	Elapsed   time.Duration
	// Errors counts transport failures, validation failures, and
	// unexpected statuses. Shed responses (429/503) are NOT errors.
	Errors int
	// Rejected counts 429/503 shed responses.
	Rejected int
	// Dropped counts open-loop issue ticks that found the outstanding
	// window full.
	Dropped int
	// Issued counts requests actually sent.
	Issued int
	// StatusCounts tallies responses by HTTP status.
	StatusCounts map[int]int
	// TargetCounts tallies issued requests per endpoint (multi-target mode
	// only; nil otherwise).
	TargetCounts map[string]int
	// ThroughputRPS is completed (200) requests per second of wall time.
	ThroughputRPS float64
	// GoodputRPS aliases ThroughputRPS for the overload experiments.
	GoodputRPS float64
	// OfferedRPS is issued requests per second of wall time.
	OfferedRPS float64
	// BytesIn totals response body bytes.
	BytesIn int64
}

// Run executes the load. It uses a shared keep-alive transport with one
// idle connection per concurrent worker, like ab's connection reuse.
func Run(opts Options) (Result, error) {
	if opts.Concurrency <= 0 {
		opts.Concurrency = 1
	}
	if opts.Requests <= 0 && opts.Rate <= 0 {
		// Closed loop needs a request count; open loop is duration-bounded
		// and treats Requests <= 0 as unlimited.
		opts.Requests = 1
	}
	if opts.Timeout == 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.Pipeline != "" {
		// Pipeline target mode: rewrite base addresses to the chain's
		// invoke path before the schedule is expanded, so every mode
		// (single URL, weighted targets, TargetFn) hits the chain.
		if opts.URL != "" {
			opts.URL = PipelineURL(opts.URL, opts.Pipeline)
		}
		for i := range opts.Targets {
			opts.Targets[i].URL = PipelineURL(opts.Targets[i].URL, opts.Pipeline)
		}
	}
	if opts.TargetFn != nil {
		// Per-request selection; no schedule to expand.
	} else if len(opts.Targets) > 0 {
		opts.sched = wrrSchedule(opts.Targets)
	} else if opts.URL == "" {
		return Result{}, fmt.Errorf("loadgen: no target URL")
	}
	idle := opts.Concurrency
	if opts.Rate > 0 {
		if opts.MaxOutstanding <= 0 {
			opts.MaxOutstanding = 4096
		}
		if opts.Duration <= 0 {
			opts.Duration = 5 * time.Second
		}
		idle = opts.MaxOutstanding
	}
	transport := &http.Transport{
		MaxIdleConns:        idle,
		MaxIdleConnsPerHost: idle,
		IdleConnTimeout:     time.Minute,
		DisableCompression:  true,
	}
	client := &http.Client{Transport: transport, Timeout: opts.Timeout}
	defer transport.CloseIdleConnections()
	if opts.Rate > 0 {
		return runOpenLoop(opts, client)
	}
	return runClosedLoop(opts, client)
}

// collector accumulates per-request outcomes across workers.
type collector struct {
	mu       sync.Mutex
	lats     []time.Duration
	statuses map[int]int
	targets  map[string]int

	errs     atomic.Int64
	rejected atomic.Int64
	bytesIn  atomic.Int64
	firstErr atomic.Pointer[error]
}

func newCollector(capacity int) *collector {
	return &collector{
		lats:     make([]time.Duration, 0, capacity),
		statuses: make(map[int]int),
	}
}

// do issues one request and records its outcome.
func (c *collector) do(client *http.Client, opts *Options, i int) {
	body := opts.Body
	if opts.BodyFn != nil {
		body = opts.BodyFn(i)
	}
	url := opts.URL
	if opts.TargetFn != nil {
		url = opts.TargetFn(i)
	} else if len(opts.sched) > 0 {
		url = opts.sched[i%len(opts.sched)]
		c.mu.Lock()
		if c.targets == nil {
			c.targets = make(map[string]int, len(opts.Targets))
		}
		c.targets[url]++
		c.mu.Unlock()
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		c.fail(fmt.Errorf("request %d: %w", i, err))
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	for k, v := range opts.Header {
		req.Header.Set(k, v)
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		c.fail(fmt.Errorf("request %d: %w", i, err))
		return
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	lat := time.Since(t0)
	c.mu.Lock()
	c.statuses[resp.StatusCode]++
	c.mu.Unlock()
	switch {
	case err != nil:
		c.fail(fmt.Errorf("request %d: read: %w", i, err))
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		// The admission controller shedding load is an expected overload
		// outcome, accounted separately from errors.
		c.rejected.Add(1)
	case resp.StatusCode != http.StatusOK:
		c.fail(fmt.Errorf("request %d: status %d", i, resp.StatusCode))
	case opts.Validate != nil && opts.Validate(data) != nil:
		c.fail(fmt.Errorf("request %d: %w", i, opts.Validate(data)))
	default:
		c.bytesIn.Add(int64(len(data)))
		c.mu.Lock()
		c.lats = append(c.lats, lat)
		c.mu.Unlock()
	}
}

func (c *collector) fail(err error) {
	c.errs.Add(1)
	c.firstErr.CompareAndSwap(nil, &err)
}

func (c *collector) result(elapsed time.Duration, issued, dropped int) (Result, error) {
	res := Result{
		Latencies:    c.lats,
		Summary:      stats.Summarize(c.lats),
		Elapsed:      elapsed,
		Errors:       int(c.errs.Load()),
		Rejected:     int(c.rejected.Load()),
		Dropped:      dropped,
		Issued:       issued,
		StatusCounts: c.statuses,
		TargetCounts: c.targets,
		BytesIn:      c.bytesIn.Load(),
	}
	if elapsed > 0 {
		res.ThroughputRPS = float64(len(c.lats)) / elapsed.Seconds()
		res.OfferedRPS = float64(issued) / elapsed.Seconds()
	}
	res.GoodputRPS = res.ThroughputRPS
	if ep := c.firstErr.Load(); ep != nil && len(c.lats) == 0 && res.Rejected == 0 {
		return res, *ep
	}
	return res, nil
}

// wrrSchedule expands weighted targets into one smooth-round-robin cycle:
// each target appears Weight times per cycle, interleaved (the classic
// smooth WRR used by nginx) rather than in runs, so even short runs spread
// load in proportion.
func wrrSchedule(targets []Target) []string {
	weight := func(t Target) int {
		if t.Weight <= 0 {
			return 1
		}
		return t.Weight
	}
	total := 0
	for _, t := range targets {
		total += weight(t)
	}
	cur := make([]int, len(targets))
	sched := make([]string, 0, total)
	for len(sched) < total {
		best := -1
		for j, t := range targets {
			cur[j] += weight(t)
			if best < 0 || cur[j] > cur[best] {
				best = j
			}
		}
		cur[best] -= total
		sched = append(sched, targets[best].URL)
	}
	return sched
}

func runClosedLoop(opts Options, client *http.Client) (Result, error) {
	col := newCollector(opts.Requests)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= opts.Requests {
					return
				}
				col.do(client, &opts, i)
			}
		}()
	}
	wg.Wait()
	return col.result(time.Since(start), opts.Requests, 0)
}

// runOpenLoop issues requests on a fixed schedule: one every 1/Rate
// seconds, catching up in bursts when the issuing goroutine falls behind
// (standard open-loop semantics — the schedule, not the server, paces
// arrivals).
func runOpenLoop(opts Options, client *http.Client) (Result, error) {
	col := newCollector(opts.MaxOutstanding)
	interval := time.Duration(float64(time.Second) / opts.Rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	sem := make(chan struct{}, opts.MaxOutstanding)
	var wg sync.WaitGroup
	issued, dropped := 0, 0
	start := time.Now()
	end := start.Add(opts.Duration)
	for i := 0; ; i++ {
		due := start.Add(time.Duration(i) * interval)
		if !due.Before(end) {
			break
		}
		if opts.Requests > 0 && issued+dropped >= opts.Requests {
			break
		}
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		select {
		case sem <- struct{}{}:
		default:
			dropped++
			continue
		}
		issued++
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			col.do(client, &opts, i)
		}(i)
	}
	wg.Wait()
	return col.result(time.Since(start), issued, dropped)
}

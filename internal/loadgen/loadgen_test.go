package loadgen

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunBasic(t *testing.T) {
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		body, _ := io.ReadAll(r.Body)
		w.Write(body)
	}))
	defer srv.Close()

	res, err := Run(Options{
		URL:         srv.URL,
		Concurrency: 4,
		Requests:    100,
		Body:        []byte("ping"),
		Validate: func(b []byte) error {
			if string(b) != "ping" {
				return fmt.Errorf("bad echo %q", b)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if served.Load() != 100 {
		t.Errorf("server saw %d requests", served.Load())
	}
	if res.Errors != 0 || res.Summary.Count != 100 {
		t.Errorf("result %+v", res.Summary)
	}
	if res.ThroughputRPS <= 0 {
		t.Error("no throughput computed")
	}
	if res.BytesIn != 400 {
		t.Errorf("BytesIn = %d", res.BytesIn)
	}
}

func TestRunPerRequestBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.Write(body)
	}))
	defer srv.Close()
	res, err := Run(Options{
		URL:      srv.URL,
		Requests: 10,
		BodyFn:   func(i int) []byte { return []byte{byte(i)} },
	})
	if err != nil || res.Summary.Count != 10 {
		t.Fatalf("Run: %v %+v", err, res.Summary)
	}
}

func TestRunCountsServerErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	res, err := Run(Options{URL: srv.URL, Requests: 5, Timeout: 2 * time.Second})
	if err == nil {
		t.Error("expected error when every request fails")
	}
	if res.Errors != 5 {
		t.Errorf("Errors = %d", res.Errors)
	}
}

func TestRunUnreachable(t *testing.T) {
	res, err := Run(Options{URL: "http://127.0.0.1:1/none", Requests: 2, Timeout: time.Second})
	if err == nil {
		t.Error("expected connection error")
	}
	if res.Errors != 2 {
		t.Errorf("Errors = %d", res.Errors)
	}
}

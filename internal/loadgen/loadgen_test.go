package loadgen

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunBasic(t *testing.T) {
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		body, _ := io.ReadAll(r.Body)
		w.Write(body)
	}))
	defer srv.Close()

	res, err := Run(Options{
		URL:         srv.URL,
		Concurrency: 4,
		Requests:    100,
		Body:        []byte("ping"),
		Validate: func(b []byte) error {
			if string(b) != "ping" {
				return fmt.Errorf("bad echo %q", b)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if served.Load() != 100 {
		t.Errorf("server saw %d requests", served.Load())
	}
	if res.Errors != 0 || res.Summary.Count != 100 {
		t.Errorf("result %+v", res.Summary)
	}
	if res.ThroughputRPS <= 0 {
		t.Error("no throughput computed")
	}
	if res.BytesIn != 400 {
		t.Errorf("BytesIn = %d", res.BytesIn)
	}
}

func TestRunPerRequestBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.Write(body)
	}))
	defer srv.Close()
	res, err := Run(Options{
		URL:      srv.URL,
		Requests: 10,
		BodyFn:   func(i int) []byte { return []byte{byte(i)} },
	})
	if err != nil || res.Summary.Count != 10 {
		t.Fatalf("Run: %v %+v", err, res.Summary)
	}
}

func TestRunCountsServerErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	res, err := Run(Options{URL: srv.URL, Requests: 5, Timeout: 2 * time.Second})
	if err == nil {
		t.Error("expected error when every request fails")
	}
	if res.Errors != 5 {
		t.Errorf("Errors = %d", res.Errors)
	}
}

func TestRunUnreachable(t *testing.T) {
	res, err := Run(Options{URL: "http://127.0.0.1:1/none", Requests: 2, Timeout: time.Second})
	if err == nil {
		t.Error("expected connection error")
	}
	if res.Errors != 2 {
		t.Errorf("Errors = %d", res.Errors)
	}
}

// TestOpenLoopPacing: the open-loop issuer follows the schedule, not the
// server, and separates shed responses from errors.
func TestOpenLoopPacing(t *testing.T) {
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := served.Add(1)
		if n%4 == 0 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	res, err := Run(Options{
		URL:      srv.URL,
		Rate:     200,
		Duration: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 200 rps for 0.5 s ≈ 100 issue ticks; allow slop for slow CI.
	if res.Issued < 50 || res.Issued > 110 {
		t.Errorf("Issued = %d, want ~100", res.Issued)
	}
	if res.Errors != 0 {
		t.Errorf("Errors = %d (shed responses must not count as errors)", res.Errors)
	}
	if res.Rejected == 0 || res.StatusCounts[503] != res.Rejected {
		t.Errorf("Rejected = %d, StatusCounts = %v", res.Rejected, res.StatusCounts)
	}
	if res.StatusCounts[200] != res.Summary.Count {
		t.Errorf("latencies (%d) must cover exactly the 200s (%d)",
			res.Summary.Count, res.StatusCounts[200])
	}
	if res.GoodputRPS <= 0 || res.OfferedRPS <= res.GoodputRPS {
		t.Errorf("GoodputRPS = %.1f, OfferedRPS = %.1f", res.GoodputRPS, res.OfferedRPS)
	}
}

// TestOpenLoopOutstandingCap: when the server stalls, issue ticks beyond
// MaxOutstanding are dropped instead of piling up goroutines.
func TestOpenLoopOutstandingCap(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(time.Second)
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	res, err := Run(Options{
		URL:            srv.URL,
		Rate:           1000,
		Duration:       300 * time.Millisecond,
		MaxOutstanding: 4,
		Timeout:        5 * time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Issued > 4 {
		t.Errorf("Issued = %d, want <= MaxOutstanding", res.Issued)
	}
	if res.Dropped == 0 {
		t.Error("expected dropped issue ticks while the window is full")
	}
}

// TestOpenLoopRequestBound: Requests caps issued work in open-loop mode.
func TestOpenLoopRequestBound(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	res, err := Run(Options{
		URL:      srv.URL,
		Rate:     10000,
		Duration: 5 * time.Second,
		Requests: 25,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Issued+res.Dropped != 25 {
		t.Errorf("Issued+Dropped = %d, want 25", res.Issued+res.Dropped)
	}
	if res.Elapsed > 2*time.Second {
		t.Errorf("run did not stop at the request bound (%v)", res.Elapsed)
	}
}

func TestMultiTargetWeights(t *testing.T) {
	counts := make([]atomic.Int64, 3)
	servers := make([]*httptest.Server, 3)
	targets := make([]Target, 3)
	weights := []int{3, 2, 1}
	for i := range servers {
		i := i
		servers[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			counts[i].Add(1)
			io.Copy(io.Discard, r.Body)
			w.Write([]byte("ok"))
		}))
		defer servers[i].Close()
		targets[i] = Target{URL: servers[i].URL, Weight: weights[i]}
	}
	// 60 requests over one 6-slot WRR cycle: exactly 30/20/10.
	res, err := Run(Options{Targets: targets, Concurrency: 4, Requests: 60})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Summary.Count != 60 || res.Errors != 0 {
		t.Fatalf("result = %+v", res.Summary)
	}
	for i, want := range []int64{30, 20, 10} {
		if got := counts[i].Load(); got != want {
			t.Errorf("target %d served %d, want %d", i, got, want)
		}
	}
	if len(res.TargetCounts) != 3 {
		t.Fatalf("TargetCounts = %v, want 3 entries", res.TargetCounts)
	}
	for i, want := range []int{30, 20, 10} {
		if got := res.TargetCounts[servers[i].URL]; got != want {
			t.Errorf("TargetCounts[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestWRRScheduleInterleaves(t *testing.T) {
	sched := wrrSchedule([]Target{{URL: "a", Weight: 3}, {URL: "b", Weight: 1}})
	if len(sched) != 4 {
		t.Fatalf("schedule length = %d, want 4", len(sched))
	}
	counts := map[string]int{}
	for _, u := range sched {
		counts[u]++
	}
	if counts["a"] != 3 || counts["b"] != 1 {
		t.Fatalf("schedule = %v", sched)
	}
	// Smoothness: "a" must not occupy three consecutive slots with "b" at
	// an end — the b slot lands mid-cycle.
	if sched[0] == "b" || sched[3] == "b" {
		t.Errorf("schedule %v is not interleaved", sched)
	}
}

func TestMultiTargetOpenLoop(t *testing.T) {
	var a, b atomic.Int64
	srvA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		a.Add(1)
		w.Write([]byte("ok"))
	}))
	defer srvA.Close()
	srvB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b.Add(1)
		w.Write([]byte("ok"))
	}))
	defer srvB.Close()
	res, err := Run(Options{
		Targets:  []Target{{URL: srvA.URL, Weight: 1}, {URL: srvB.URL, Weight: 1}},
		Rate:     400,
		Duration: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Issued == 0 {
		t.Fatal("open loop issued nothing")
	}
	if a.Load() == 0 || b.Load() == 0 {
		t.Fatalf("load not spread: a=%d b=%d", a.Load(), b.Load())
	}
}

func TestRunNoTarget(t *testing.T) {
	if _, err := Run(Options{Requests: 1}); err == nil {
		t.Fatal("Run with no URL and no targets succeeded")
	}
}

func TestPipelineURL(t *testing.T) {
	for _, tc := range []struct{ base, name, want string }{
		{"http://h:1", "chain", "http://h:1/p/chain"},
		{"http://h:1/", "chain", "http://h:1/p/chain"},
	} {
		if got := PipelineURL(tc.base, tc.name); got != tc.want {
			t.Errorf("PipelineURL(%q, %q) = %q, want %q", tc.base, tc.name, got, tc.want)
		}
	}
}

// TestPipelineTargetMode: Pipeline rewrites the base URL (and every weighted
// target) to the chain's /p/<name> route, and the summary reports the
// end-to-end chain latency the server took to reply.
func TestPipelineTargetMode(t *testing.T) {
	var chainHits atomic.Int64
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/p/imgchain" {
			http.NotFound(w, r)
			return
		}
		chainHits.Add(1)
		w.Write([]byte("ok"))
	})
	srv := httptest.NewServer(handler)
	defer srv.Close()
	srv2 := httptest.NewServer(handler)
	defer srv2.Close()

	res, err := Run(Options{
		URL:      srv.URL,
		Pipeline: "imgchain",
		Requests: 20,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errors != 0 || res.Summary.Count != 20 {
		t.Fatalf("result %+v errors=%d", res.Summary, res.Errors)
	}
	if chainHits.Load() != 20 {
		t.Errorf("chain route saw %d requests, want 20", chainHits.Load())
	}
	if res.Summary.P50 <= 0 {
		t.Error("no end-to-end chain latency recorded")
	}

	// Weighted targets get the same rewrite.
	res, err = Run(Options{
		Targets:  []Target{{URL: srv.URL}, {URL: srv2.URL}},
		Pipeline: "imgchain",
		Requests: 10,
	})
	if err != nil || res.Errors != 0 || res.Summary.Count != 10 {
		t.Fatalf("multi-target pipeline run: %v %+v errors=%d", err, res.Summary, res.Errors)
	}
}

package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sledge/internal/engine"
	"sledge/internal/sandbox"
)

// Distribution selects the work-distribution mechanism (the paper's §3.4
// decoupling; the non-default modes exist for the ablation benchmarks).
type Distribution int

// Work-distribution modes.
const (
	// DistWorkStealing is the paper's design: a global lock-free
	// Chase–Lev deque fed by the listener and stolen from by workers.
	DistWorkStealing Distribution = iota + 1
	// DistGlobalLock uses a mutex-protected global FIFO: work-conserving
	// but contended (the paper's "global queue is not scalable" strawman).
	DistGlobalLock
	// DistStatic assigns requests round-robin to per-worker inboxes with
	// no stealing: scalable but not work-conserving.
	DistStatic
)

// String returns the mode name.
func (d Distribution) String() string {
	switch d {
	case DistWorkStealing:
		return "work-stealing"
	case DistGlobalLock:
		return "global-lock"
	case DistStatic:
		return "static"
	}
	return fmt.Sprintf("dist(%d)", int(d))
}

// Policy selects the per-worker scheduling policy.
type Policy int

// Scheduling policies.
const (
	// PolicyPreemptiveRR is the paper's design: round-robin with an
	// involuntary preemption quantum.
	PolicyPreemptiveRR Policy = iota + 1
	// PolicyCooperative runs each sandbox until it completes or blocks —
	// the head-of-line-blocking strawman of §3.4.
	PolicyCooperative
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyPreemptiveRR:
		return "preemptive-rr"
	case PolicyCooperative:
		return "cooperative"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Config configures a worker pool.
type Config struct {
	// Workers is the number of worker cores. Default 1.
	Workers int
	// Quantum is the preemption time slice (paper default: 5 ms).
	Quantum time.Duration
	// FuelPerMS converts the quantum to instructions; 0 calibrates.
	FuelPerMS int64
	// Policy selects preemptive vs cooperative scheduling.
	Policy Policy
	// Distribution selects the work-distribution mechanism.
	Distribution Distribution
	// IdlePoll bounds how long an idle worker sleeps before rechecking
	// its event loop. Default 500µs.
	IdlePoll time.Duration
	// MaxLocalRunq bounds how many sandboxes a worker admits into its
	// local round-robin queue before it stops pulling new requests.
	// Default 64.
	MaxLocalRunq int
}

// DefaultQuantum mirrors the paper's 5 ms time slice.
const DefaultQuantum = 5 * time.Millisecond

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Quantum == 0 {
		c.Quantum = DefaultQuantum
	}
	if c.Policy == 0 {
		c.Policy = PolicyPreemptiveRR
	}
	if c.Distribution == 0 {
		c.Distribution = DistWorkStealing
	}
	if c.IdlePoll == 0 {
		c.IdlePoll = 500 * time.Microsecond
	}
	if c.MaxLocalRunq == 0 {
		c.MaxLocalRunq = 64
	}
	return c
}

// Stats are cumulative pool counters.
type Stats struct {
	Submitted   uint64
	Completed   uint64
	Trapped     uint64
	Preemptions uint64
	Steals      uint64
	Blocked     uint64
}

// Pool is the Sledge worker pool: N worker goroutines (the paper's pinned
// worker cores), a work-distribution structure, and per-worker run queues
// and event loops.
type Pool struct {
	cfg         Config
	fuelQuantum int64

	global   *Deque[sandbox.Sandbox]
	submitCh chan *sandbox.Sandbox

	lockQ struct {
		mu sync.Mutex
		q  []*sandbox.Sandbox
	}

	workers []*worker
	nextInb atomic.Uint64

	wake     chan struct{}
	stopCh   chan struct{}
	stopped  atomic.Bool
	wg       sync.WaitGroup
	inflight atomic.Int64
	// busy counts workers currently executing a sandbox quantum — the
	// utilization signal the admission controller reads.
	busy atomic.Int64

	submitted   atomic.Uint64
	completed   atomic.Uint64
	trapped     atomic.Uint64
	preemptions atomic.Uint64
	steals      atomic.Uint64
	blocked     atomic.Uint64
}

type worker struct {
	id   int
	pool *Pool
	runq []*sandbox.Sandbox

	inbox struct {
		mu sync.Mutex
		q  []*sandbox.Sandbox
	}
	blockedQ []*sandbox.Sandbox

	// idleTimer is reused across idleWait parks; a worker that cycles
	// between idle and running on every request must not allocate a fresh
	// timer per cycle (the zero-allocation steady-state path).
	idleTimer *time.Timer

	// qlen publishes len(runq)+len(blockedQ) once per loop iteration so
	// QueueDepth can sum local backlogs without touching worker-owned
	// slices.
	qlen atomic.Int64
}

// NewPool starts the worker pool.
func NewPool(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{
		cfg:      cfg,
		global:   NewDeque[sandbox.Sandbox](256),
		submitCh: make(chan *sandbox.Sandbox, 1024),
		wake:     make(chan struct{}, cfg.Workers),
		stopCh:   make(chan struct{}),
	}
	if cfg.Policy == PolicyPreemptiveRR {
		rate := cfg.FuelPerMS
		if rate == 0 {
			rate = engine.CalibrateFuelRate()
		}
		p.fuelQuantum = int64(float64(rate) * cfg.Quantum.Seconds() * 1000)
		if p.fuelQuantum < 1000 {
			p.fuelQuantum = 1000
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{id: i, pool: p}
		p.workers = append(p.workers, w)
	}
	if cfg.Distribution == DistWorkStealing {
		p.wg.Add(1)
		go p.dispatch()
	}
	for _, w := range p.workers {
		p.wg.Add(1)
		go w.loop()
	}
	return p
}

// ErrStopped reports a Submit after Stop.
var ErrStopped = errors.New("sched: pool stopped")

// Submit hands a sandbox to the pool. The sandbox's OnComplete callback
// fires on a worker when it finishes.
func (p *Pool) Submit(sb *sandbox.Sandbox) error {
	if p.stopped.Load() {
		return ErrStopped
	}
	p.submitted.Add(1)
	p.inflight.Add(1)
	switch p.cfg.Distribution {
	case DistWorkStealing:
		select {
		case p.submitCh <- sb:
		case <-p.stopCh:
			p.inflight.Add(-1)
			return ErrStopped
		}
	case DistGlobalLock:
		p.lockQ.mu.Lock()
		p.lockQ.q = append(p.lockQ.q, sb)
		p.lockQ.mu.Unlock()
		p.wakeOne()
	case DistStatic:
		w := p.workers[p.nextInb.Add(1)%uint64(len(p.workers))]
		w.inbox.mu.Lock()
		w.inbox.q = append(w.inbox.q, sb)
		w.inbox.mu.Unlock()
		p.wakeOne()
	}
	return nil
}

// dispatch is the deque owner: it funnels submissions from any goroutine
// into single-owner PushBottom calls (the paper's listener core role).
func (p *Pool) dispatch() {
	defer p.wg.Done()
	for {
		select {
		case sb := <-p.submitCh:
			p.global.PushBottom(sb)
			p.wakeOne()
		case <-p.stopCh:
			return
		}
	}
}

func (p *Pool) wakeOne() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Submitted:   p.submitted.Load(),
		Completed:   p.completed.Load(),
		Trapped:     p.trapped.Load(),
		Preemptions: p.preemptions.Load(),
		Steals:      p.steals.Load(),
		Blocked:     p.blocked.Load(),
	}
}

// Inflight reports sandboxes submitted but not yet finished.
func (p *Pool) Inflight() int { return int(p.inflight.Load()) }

// Workers reports the worker-core count.
func (p *Pool) Workers() int { return p.cfg.Workers }

// Busy reports workers currently executing a sandbox quantum.
func (p *Pool) Busy() int { return int(p.busy.Load()) }

// Utilization reports the fraction of workers mid-quantum, in [0, 1].
func (p *Pool) Utilization() float64 {
	return float64(p.busy.Load()) / float64(p.cfg.Workers)
}

// QueueDepth approximates sandboxes waiting for a core: the global
// distribution structures plus each worker's published local backlog. The
// per-worker figures are refreshed once per scheduling iteration, so the
// value is a load signal, not an exact count.
func (p *Pool) QueueDepth() int {
	depth := int64(p.global.Size() + len(p.submitCh))
	p.lockQ.mu.Lock()
	depth += int64(len(p.lockQ.q))
	p.lockQ.mu.Unlock()
	for _, w := range p.workers {
		w.inbox.mu.Lock()
		depth += int64(len(w.inbox.q))
		w.inbox.mu.Unlock()
		depth += w.qlen.Load()
	}
	return int(depth)
}

// FuelQuantum reports the per-slice fuel (0 in cooperative mode).
func (p *Pool) FuelQuantum() int64 { return p.fuelQuantum }

// Quiesce waits until no sandboxes are in flight or the timeout passes.
func (p *Pool) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if p.inflight.Load() == 0 {
			return true
		}
		time.Sleep(100 * time.Microsecond)
	}
	return p.inflight.Load() == 0
}

// Stop shuts the pool down. In-flight sandboxes finish their current
// quantum; queued sandboxes are failed so waiters are released.
func (p *Pool) Stop() {
	if !p.stopped.CompareAndSwap(false, true) {
		return
	}
	close(p.stopCh)
	p.wg.Wait()
	// Fail anything left queued.
	for {
		sb, ok := p.global.Steal()
		if !ok {
			break
		}
		p.finish(sb, true)
	}
	for {
		select {
		case sb := <-p.submitCh:
			p.finish(sb, true)
			continue
		default:
		}
		break
	}
	p.lockQ.mu.Lock()
	q := p.lockQ.q
	p.lockQ.q = nil
	p.lockQ.mu.Unlock()
	for _, sb := range q {
		p.finish(sb, true)
	}
	for _, w := range p.workers {
		w.inbox.mu.Lock()
		iq := w.inbox.q
		w.inbox.q = nil
		w.inbox.mu.Unlock()
		for _, sb := range iq {
			p.finish(sb, true)
		}
		for _, sb := range w.blockedQ {
			p.finish(sb, true)
		}
		for _, sb := range w.runq {
			p.finish(sb, true)
		}
	}
}

func (p *Pool) finish(sb *sandbox.Sandbox, failed bool) {
	if failed {
		sb.Fail(ErrStopped)
		p.trapped.Add(1)
	}
	p.inflight.Add(-1)
	sb.FinishNotify() // may recycle sb: last touch
}

// ---- worker ----

func (w *worker) loop() {
	p := w.pool
	defer p.wg.Done()
	for {
		if p.stopped.Load() {
			// Abandon local work so shutdown is bounded even when a
			// sandbox would never finish (cooperative CPU hogs).
			for _, sb := range w.runq {
				p.finish(sb, true)
			}
			w.runq = nil
			for _, sb := range w.blockedQ {
				p.finish(sb, true)
			}
			w.blockedQ = nil
			return
		}
		w.drainEventLoop()
		w.admit()
		w.qlen.Store(int64(len(w.runq) + len(w.blockedQ)))
		sb := w.next()
		if sb == nil {
			w.idleWait()
			continue
		}
		if sb.Abandoned() {
			// The waiter timed out; don't spend another quantum on it.
			sb.Fail(sandbox.ErrAbandoned)
			p.trapped.Add(1)
			p.inflight.Add(-1)
			sb.FinishNotify() // recycles sb: last touch
			continue
		}
		prevPre := sb.Preemptions
		p.busy.Add(1)
		st := sb.RunQuantum(p.fuelQuantum)
		p.busy.Add(-1)
		switch st {
		case sandbox.StateRunnable:
			p.preemptions.Add(sb.Preemptions - prevPre)
			w.runq = append(w.runq, sb)
		case sandbox.StateBlocked:
			p.blocked.Add(1)
			w.blockedQ = append(w.blockedQ, sb)
		case sandbox.StateComplete:
			p.completed.Add(1)
			p.inflight.Add(-1)
			sb.FinishNotify() // may recycle sb: last touch
		case sandbox.StateTrapped:
			p.trapped.Add(1)
			p.inflight.Add(-1)
			sb.FinishNotify() // may recycle sb: last touch
		}
	}
}

// admit pulls new requests from the distribution structure into the local
// round-robin queue. The paper integrates request dequeueing into the
// scheduling loop so newly arrived short functions immediately share the
// core with long-running sandboxes (temporal isolation across admission).
func (w *worker) admit() {
	p := w.pool
	if len(w.runq) >= p.cfg.MaxLocalRunq {
		return
	}
	switch p.cfg.Distribution {
	case DistWorkStealing:
		if sb, ok := p.global.Steal(); ok {
			p.steals.Add(1)
			w.runq = append(w.runq, sb)
		}
	case DistGlobalLock:
		p.lockQ.mu.Lock()
		if len(p.lockQ.q) > 0 {
			sb := p.lockQ.q[0]
			copy(p.lockQ.q, p.lockQ.q[1:])
			p.lockQ.q = p.lockQ.q[:len(p.lockQ.q)-1]
			p.lockQ.mu.Unlock()
			w.runq = append(w.runq, sb)
			return
		}
		p.lockQ.mu.Unlock()
	case DistStatic:
		w.inbox.mu.Lock()
		if len(w.inbox.q) > 0 {
			sb := w.inbox.q[0]
			copy(w.inbox.q, w.inbox.q[1:])
			w.inbox.q = w.inbox.q[:len(w.inbox.q)-1]
			w.inbox.mu.Unlock()
			w.runq = append(w.runq, sb)
			return
		}
		w.inbox.mu.Unlock()
	}
}

// next pops the local run queue in round-robin order.
func (w *worker) next() *sandbox.Sandbox {
	if len(w.runq) > 0 {
		sb := w.runq[0]
		copy(w.runq, w.runq[1:])
		w.runq = w.runq[:len(w.runq)-1]
		return sb
	}
	return nil
}

// drainEventLoop completes blocked I/O whose deadline passed and requeues
// the sandboxes — the per-worker analog of the paper's libuv loop, checked
// before scheduling (the scheduler "checks for pending I/O before
// scheduling the function sandboxes from the runqueue").
func (w *worker) drainEventLoop() {
	if len(w.blockedQ) == 0 {
		return
	}
	now := time.Now()
	kept := w.blockedQ[:0]
	for _, sb := range w.blockedQ {
		at, ok := sb.PendingReadyAt()
		if !ok || at.After(now) {
			kept = append(kept, sb)
			continue
		}
		if err := sb.CompletePending(); err != nil {
			sb.Fail(err)
			w.pool.trapped.Add(1)
			w.pool.inflight.Add(-1)
			sb.FinishNotify() // may recycle sb: last touch
			continue
		}
		w.runq = append(w.runq, sb)
	}
	w.blockedQ = kept
}

// idleWait parks the worker until new work may be available: a wake token,
// the next blocked-I/O deadline, or the poll interval.
func (w *worker) idleWait() {
	p := w.pool
	wait := p.cfg.IdlePoll
	if len(w.blockedQ) > 0 {
		now := time.Now()
		for _, sb := range w.blockedQ {
			if at, ok := sb.PendingReadyAt(); ok {
				if d := at.Sub(now); d < wait {
					wait = d
				}
			}
		}
		if wait < 0 {
			return
		}
	}
	if w.idleTimer == nil {
		w.idleTimer = time.NewTimer(wait)
	} else {
		w.idleTimer.Reset(wait)
	}
	select {
	case <-p.wake:
	case <-w.idleTimer.C:
	case <-p.stopCh:
	}
	// Quiesce the timer for the next Reset. This goroutine is the only
	// receiver, so a non-blocking drain after a failed Stop is race-free.
	if !w.idleTimer.Stop() {
		select {
		case <-w.idleTimer.C:
		default:
		}
	}
}

package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sledge/internal/engine"
	"sledge/internal/sandbox"
)

// Distribution selects the work-distribution mechanism (the paper's §3.4
// decoupling; the non-default modes exist for the ablation benchmarks).
type Distribution int

// Work-distribution modes.
const (
	// DistWorkStealing is the default scale-out topology: every worker
	// owns its own run queue, the listener submits directly to the
	// least-loaded worker's inbox (no dispatcher goroutine, no channel
	// hop), idle workers steal half a victim's queue in one batch, and
	// parked workers receive targeted wakeups.
	DistWorkStealing Distribution = iota + 1
	// DistGlobalLock uses a mutex-protected global FIFO: work-conserving
	// but contended (the paper's "global queue is not scalable" strawman).
	DistGlobalLock
	// DistStatic assigns requests round-robin to per-worker inboxes with
	// no stealing: scalable but not work-conserving.
	DistStatic
	// DistGlobalDeque is the paper's original design, preserved as an
	// ablation: a single global lock-free Chase–Lev deque owned by a
	// dispatcher goroutine that Submit feeds over a channel; workers
	// steal one sandbox per scheduling round.
	DistGlobalDeque
)

// String returns the mode name.
func (d Distribution) String() string {
	switch d {
	case DistWorkStealing:
		return "work-stealing"
	case DistGlobalLock:
		return "global-lock"
	case DistStatic:
		return "static"
	case DistGlobalDeque:
		return "global-deque"
	}
	return fmt.Sprintf("dist(%d)", int(d))
}

// Policy selects the per-worker scheduling policy.
type Policy int

// Scheduling policies.
const (
	// PolicyPreemptiveRR is the paper's design: round-robin with an
	// involuntary preemption quantum.
	PolicyPreemptiveRR Policy = iota + 1
	// PolicyCooperative runs each sandbox until it completes or blocks —
	// the head-of-line-blocking strawman of §3.4.
	PolicyCooperative
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyPreemptiveRR:
		return "preemptive-rr"
	case PolicyCooperative:
		return "cooperative"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Config configures a worker pool.
type Config struct {
	// Workers is the number of worker cores. Default 1.
	Workers int
	// Quantum is the preemption time slice (paper default: 5 ms).
	Quantum time.Duration
	// FuelPerMS is the calibrated gas rate used to convert the quantum to
	// deterministic fuel (fuel and gas share units); 0 calibrates.
	FuelPerMS int64
	// Policy selects preemptive vs cooperative scheduling.
	Policy Policy
	// Distribution selects the work-distribution mechanism.
	Distribution Distribution
	// IdlePoll bounds how long an idle worker sleeps before rechecking
	// its event loop. Default 500µs. With targeted wakeups this is only a
	// backstop: the request path never waits on it.
	IdlePoll time.Duration
	// MaxLocalRunq bounds how many sandboxes a worker admits into its
	// local round-robin queue before it stops pulling new requests.
	// Default 64.
	MaxLocalRunq int
}

// DefaultQuantum mirrors the paper's 5 ms time slice.
const DefaultQuantum = 5 * time.Millisecond

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Quantum == 0 {
		c.Quantum = DefaultQuantum
	}
	if c.Policy == 0 {
		c.Policy = PolicyPreemptiveRR
	}
	if c.Distribution == 0 {
		c.Distribution = DistWorkStealing
	}
	if c.IdlePoll == 0 {
		c.IdlePoll = 500 * time.Microsecond
	}
	if c.MaxLocalRunq == 0 {
		c.MaxLocalRunq = 64
	}
	return c
}

// Stats are cumulative pool counters.
type Stats struct {
	Submitted    uint64
	Completed    uint64
	Trapped      uint64
	Preemptions  uint64
	Steals       uint64
	StealBatches uint64
	Blocked      uint64
}

// stealBatchMax bounds one StealBatch transfer (and sizes the per-worker
// scratch buffer the batch is staged in before the CAS commits it).
const stealBatchMax = 64

// pad separates owner-hot atomics from fields read by other goroutines so
// a worker bumping its counters does not false-share a cache line with
// peers polling its published load.
type pad [64]byte

// Pool is the Sledge worker pool: N worker goroutines (the paper's pinned
// worker cores), a work-distribution structure, and per-worker run queues
// and event loops.
type Pool struct {
	cfg         Config
	fuelQuantum int64

	workers []*worker
	// rr rotates Submit's tie-breaks and thieves' victim scans so neither
	// systematically favours low worker ids.
	rr atomic.Uint64

	// global + submitCh implement the DistGlobalDeque ablation (the
	// paper's original single-deque design with its dispatcher hop).
	global   *Deque[sandbox.Sandbox]
	submitCh chan *sandbox.Sandbox

	lockQ struct {
		mu sync.Mutex
		q  []*sandbox.Sandbox
		// n mirrors len(q) so QueueDepth and the idle re-check read the
		// backlog without the mutex.
		n atomic.Int64
	}

	// nparked counts workers with an armed parker; wakers skip the scan
	// entirely when it is zero.
	nparked atomic.Int64

	stopCh  chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup

	inflight  atomic.Int64
	submitted atomic.Uint64
	// extTrapped counts sandboxes failed outside a worker context (queued
	// work failed by Stop); Stats folds it into Trapped.
	extTrapped atomic.Uint64

	// Quiesce waiters share one broadcast channel, closed by the inflight
	// decrement that reaches zero. quiesceArmed keeps the completion hot
	// path to a single atomic load when nobody is waiting.
	quiesceMu    sync.Mutex
	quiesceCh    chan struct{}
	quiesceArmed atomic.Bool
}

// worker is one scheduling core: an owned run queue (peers steal batches
// from its head), a submission inbox, a blocked-I/O timer heap, a parker,
// and owner-written counters aggregated by Stats.
type worker struct {
	id   int
	pool *Pool

	runq   *Runq[sandbox.Sandbox]
	inbox  inbox
	timers timerHeap

	// overflow holds admitted work that exceeded MaxLocalRunq when an
	// inbox chain or a stolen batch was larger than the run queue's
	// remaining room. Owner-only; drains into runq as room appears.
	overflowHead *sandbox.Sandbox
	overflowTail *sandbox.Sandbox
	overflowN    int64

	// stealBuf stages a StealBatch before its CAS commits; reused across
	// steals so the steal path allocates nothing.
	stealBuf [stealBatchMax]*sandbox.Sandbox

	park *parker
	// idleTimer is reused across parks; a worker that cycles between idle
	// and running on every request must not allocate a fresh timer per
	// cycle (the zero-allocation steady-state path).
	idleTimer *time.Timer

	_ pad

	// qlen publishes runq + blocked + overflow once per loop iteration so
	// QueueDepth and Submit's least-loaded scan read local backlogs
	// without touching worker-owned structures.
	qlen atomic.Int64
	// running is 1 while the worker is mid-quantum — the per-worker shard
	// of the old global busy counter (the utilization signal).
	running atomic.Int32

	_ pad

	// Owner-written counters, aggregated on read by Pool.Stats.
	completed    atomic.Uint64
	trapped      atomic.Uint64
	preemptions  atomic.Uint64
	steals       atomic.Uint64
	stealBatches atomic.Uint64
	blocked      atomic.Uint64
}

// NewPool starts the worker pool.
func NewPool(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{
		cfg:    cfg,
		global: NewDeque[sandbox.Sandbox](256),
		stopCh: make(chan struct{}),
	}
	if cfg.Policy == PolicyPreemptiveRR {
		rate := cfg.FuelPerMS
		if rate == 0 {
			rate = engine.CalibrateFuelRate()
		}
		p.fuelQuantum = int64(float64(rate) * cfg.Quantum.Seconds() * 1000)
		if p.fuelQuantum < 1000 {
			p.fuelQuantum = 1000
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{
			id:   i,
			pool: p,
			runq: NewRunq[sandbox.Sandbox](cfg.MaxLocalRunq),
			park: newParker(),
		}
		p.workers = append(p.workers, w)
	}
	if cfg.Distribution == DistGlobalDeque {
		p.submitCh = make(chan *sandbox.Sandbox, 1024)
		p.wg.Add(1)
		go p.dispatch()
	}
	for _, w := range p.workers {
		p.wg.Add(1)
		go w.loop()
	}
	return p
}

// ErrStopped reports a Submit after Stop.
var ErrStopped = errors.New("sched: pool stopped")

// Submit hands a sandbox to the pool. The sandbox's OnComplete callback
// fires on a worker when it finishes.
func (p *Pool) Submit(sb *sandbox.Sandbox) error {
	if p.stopped.Load() {
		return ErrStopped
	}
	p.submitted.Add(1)
	p.inflight.Add(1)
	switch p.cfg.Distribution {
	case DistWorkStealing:
		w := p.pickWorker()
		w.inbox.push(sb)
		if p.stopped.Load() {
			// Raced with Stop: the workers may already be gone, so fail
			// whatever the inbox holds exactly as Stop's drain would.
			p.failInbox(w)
			return ErrStopped
		}
		p.wakeWorker(w)
	case DistGlobalDeque:
		select {
		case p.submitCh <- sb:
		case <-p.stopCh:
			p.decInflight()
			return ErrStopped
		}
	case DistGlobalLock:
		p.lockQ.mu.Lock()
		p.lockQ.q = append(p.lockQ.q, sb)
		p.lockQ.n.Store(int64(len(p.lockQ.q)))
		p.lockQ.mu.Unlock()
		p.wakeAny(0)
	case DistStatic:
		w := p.workers[p.rr.Add(1)%uint64(len(p.workers))]
		w.inbox.push(sb)
		if p.stopped.Load() {
			p.failInbox(w)
			return ErrStopped
		}
		// No stealing in static mode: only the assigned worker can run
		// this sandbox, so only it is worth waking.
		w.park.wake(&p.nparked)
	}
	return nil
}

// SubmitAffine hands a sandbox to the pool with affinity for one worker's
// queue: a pipeline's continuation goes to the worker that ran the previous
// stage (sandbox.LastWorker), so the handoff buffer it just wrote is still
// hot in that core's cache. Affinity is a placement hint, not a pin — the
// continuation lands in the worker's ordinary inbox, where idle peers can
// still steal it (see worker.steal), so work-conservation holds even when
// the preferred worker is stuck in a long quantum.
//
// In the global-queue distributions there is no per-worker placement to
// bias, and an out-of-range hint means the previous stage never ran here;
// both fall back to Submit's normal balancing.
func (p *Pool) SubmitAffine(sb *sandbox.Sandbox, worker int) error {
	if worker < 0 || worker >= len(p.workers) {
		return p.Submit(sb)
	}
	switch p.cfg.Distribution {
	case DistWorkStealing, DistStatic:
	default:
		return p.Submit(sb)
	}
	if p.stopped.Load() {
		return ErrStopped
	}
	p.submitted.Add(1)
	p.inflight.Add(1)
	w := p.workers[worker]
	w.inbox.push(sb)
	if p.stopped.Load() {
		// Raced with Stop: the workers may already be gone, so fail
		// whatever the inbox holds exactly as Stop's drain would.
		p.failInbox(w)
		return ErrStopped
	}
	if p.cfg.Distribution == DistStatic {
		// No stealing in static mode: only the assigned worker can run
		// this sandbox, so only it is worth waking.
		w.park.wake(&p.nparked)
	} else {
		p.wakeWorker(w)
	}
	return nil
}

// pickWorker returns the least-loaded worker, tie-broken by a rotating
// start index so equal-load submissions spread round-robin.
func (p *Pool) pickWorker() *worker {
	ws := p.workers
	if len(ws) == 1 {
		return ws[0]
	}
	start := int(p.rr.Add(1) % uint64(len(ws)))
	best := ws[start]
	bestLoad := best.load()
	for i := 1; i < len(ws) && bestLoad > 0; i++ {
		w := ws[(start+i)%len(ws)]
		if l := w.load(); l < bestLoad {
			best, bestLoad = w, l
		}
	}
	return best
}

// load is the worker's published backlog: queued + blocked + inbox, plus
// one if it is mid-quantum.
func (w *worker) load() int64 {
	return w.qlen.Load() + w.inbox.n.Load() + int64(w.running.Load())
}

// wakeWorker delivers a targeted wakeup to w, falling back to any parked
// peer (which can steal the work) when w is already awake.
func (p *Pool) wakeWorker(w *worker) {
	if w.park.wake(&p.nparked) {
		return
	}
	if p.nparked.Load() > 0 {
		p.wakeAny(w.id + 1)
	}
}

// wakeAny wakes one parked worker, scanning from start.
func (p *Pool) wakeAny(start int) {
	if p.nparked.Load() == 0 {
		return
	}
	n := len(p.workers)
	for i := 0; i < n; i++ {
		if p.workers[(start+i)%n].park.wake(&p.nparked) {
			return
		}
	}
}

// dispatch is the DistGlobalDeque deque owner: it funnels submissions from
// any goroutine into single-owner PushBottom calls (the paper's listener
// core role, and the per-request hop the default topology eliminates).
func (p *Pool) dispatch() {
	defer p.wg.Done()
	for {
		select {
		case sb := <-p.submitCh:
			p.global.PushBottom(sb)
			p.wakeAny(0)
		case <-p.stopCh:
			return
		}
	}
}

// Stats returns a snapshot of the pool counters, aggregating the
// per-worker shards.
func (p *Pool) Stats() Stats {
	st := Stats{
		Submitted: p.submitted.Load(),
		Trapped:   p.extTrapped.Load(),
	}
	for _, w := range p.workers {
		st.Completed += w.completed.Load()
		st.Trapped += w.trapped.Load()
		st.Preemptions += w.preemptions.Load()
		st.Steals += w.steals.Load()
		st.StealBatches += w.stealBatches.Load()
		st.Blocked += w.blocked.Load()
	}
	return st
}

// Inflight reports sandboxes submitted but not yet finished.
func (p *Pool) Inflight() int { return int(p.inflight.Load()) }

// Workers reports the worker-core count.
func (p *Pool) Workers() int { return p.cfg.Workers }

// Busy reports workers currently executing a sandbox quantum, summed from
// the per-worker running flags (no shared counter on the quantum path).
func (p *Pool) Busy() int {
	n := 0
	for _, w := range p.workers {
		n += int(w.running.Load())
	}
	return n
}

// Utilization reports the fraction of workers mid-quantum, in [0, 1].
func (p *Pool) Utilization() float64 {
	return float64(p.Busy()) / float64(p.cfg.Workers)
}

// QueueDepth approximates sandboxes waiting for a core: the global
// distribution structures plus each worker's published local backlog. It
// is lock-free — every term is an atomic published by its owner — so the
// admission hot path can call it per request. The per-worker figures are
// refreshed once per scheduling iteration, so the value is a load signal,
// not an exact count.
func (p *Pool) QueueDepth() int {
	depth := int64(p.global.Size()+len(p.submitCh)) + p.lockQ.n.Load()
	for _, w := range p.workers {
		depth += w.qlen.Load() + w.inbox.n.Load()
	}
	if depth < 0 {
		depth = 0
	}
	return int(depth)
}

// FuelQuantum reports the per-slice fuel (0 in cooperative mode).
func (p *Pool) FuelQuantum() int64 { return p.fuelQuantum }

// Quiesce waits until no sandboxes are in flight or the timeout passes.
// The wait is event-driven: the completion that takes inflight to zero
// closes a broadcast channel, so a draining runtime does not burn a core
// polling.
func (p *Pool) Quiesce(timeout time.Duration) bool {
	if p.inflight.Load() == 0 {
		return true
	}
	p.quiesceMu.Lock()
	if p.quiesceCh == nil {
		p.quiesceCh = make(chan struct{})
		p.quiesceArmed.Store(true)
	}
	ch := p.quiesceCh
	p.quiesceMu.Unlock()
	if p.inflight.Load() == 0 {
		// The last completion raced arming; its notification may already
		// have passed, so don't wait for one.
		return true
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-ch:
		return true
	case <-timer.C:
		return p.inflight.Load() == 0
	}
}

// decInflight retires one in-flight sandbox, waking Quiesce waiters when
// the count reaches zero. The common case pays one extra atomic load.
func (p *Pool) decInflight() {
	if p.inflight.Add(-1) != 0 || !p.quiesceArmed.Load() {
		return
	}
	p.quiesceMu.Lock()
	if p.quiesceCh != nil && p.inflight.Load() == 0 {
		close(p.quiesceCh)
		p.quiesceCh = nil
		p.quiesceArmed.Store(false)
	}
	p.quiesceMu.Unlock()
}

// Stop shuts the pool down. In-flight sandboxes finish their current
// quantum; queued sandboxes are failed so waiters are released.
func (p *Pool) Stop() {
	if !p.stopped.CompareAndSwap(false, true) {
		return
	}
	close(p.stopCh)
	p.wg.Wait()
	// Fail anything left queued. Workers drained their local state on
	// exit; this sweeps the global structures and any submission that
	// raced shutdown.
	for {
		sb, ok := p.global.Steal()
		if !ok {
			break
		}
		p.finish(sb, true)
	}
	for p.submitCh != nil {
		select {
		case sb := <-p.submitCh:
			p.finish(sb, true)
			continue
		default:
		}
		break
	}
	p.lockQ.mu.Lock()
	q := p.lockQ.q
	p.lockQ.q = nil
	p.lockQ.n.Store(0)
	p.lockQ.mu.Unlock()
	for _, sb := range q {
		p.finish(sb, true)
	}
	for _, w := range p.workers {
		p.failInbox(w)
		for {
			sb, ok := w.runq.Pop()
			if !ok {
				break
			}
			p.finish(sb, true)
		}
	}
}

// failInbox drains a worker's inbox and fails everything in it.
func (p *Pool) failInbox(w *worker) {
	chain := w.inbox.takeAll()
	for chain != nil {
		next := chain.SchedNext
		chain.SchedNext = nil
		p.finish(chain, true)
		chain = next
	}
}

func (p *Pool) finish(sb *sandbox.Sandbox, failed bool) {
	if failed {
		sb.Fail(ErrStopped)
		p.extTrapped.Add(1)
	}
	p.decInflight()
	sb.FinishNotify() // may recycle sb: last touch
}

// ---- worker ----

func (w *worker) loop() {
	p := w.pool
	defer p.wg.Done()
	for {
		if p.stopped.Load() {
			w.drainStop()
			return
		}
		w.drainTimers()
		w.admit()
		w.qlen.Store(int64(w.runq.Len()+w.timers.len()) + w.overflowN)
		sb, ok := w.runq.Pop()
		if !ok {
			w.idleWait()
			continue
		}
		if w.runq.Len() > 0 && p.cfg.Distribution != DistStatic && p.nparked.Load() > 0 {
			// Surplus behind this sandbox that an idle peer could steal.
			p.wakeAny(w.id + 1)
		}
		if sb.Abandoned() {
			// The waiter timed out; don't spend another quantum on it.
			sb.Fail(sandbox.ErrAbandoned)
			w.trapped.Add(1)
			p.decInflight()
			sb.FinishNotify() // recycles sb: last touch
			continue
		}
		prevPre := sb.Preemptions
		sb.LastWorker.Store(int32(w.id))
		w.running.Store(1)
		fuel := p.fuelQuantum
		if fuel > 0 && !sb.Preemptible() {
			// The naive rung traps on fuel exhaustion instead of yielding;
			// run it unpreempted rather than killing long requests.
			fuel = 0
		}
		st := sb.RunQuantum(fuel)
		w.running.Store(0)
		switch st {
		case sandbox.StateRunnable:
			w.preemptions.Add(sb.Preemptions - prevPre)
			w.runq.Push(sb)
		case sandbox.StateBlocked:
			w.blocked.Add(1)
			at, ok := sb.PendingReadyAt()
			if !ok {
				// Defensive: a blocked sandbox without a pending deadline
				// completes (and fails closed) on the next drain.
				at = time.Now()
			}
			w.timers.push(sb, at)
		case sandbox.StateComplete:
			w.completed.Add(1)
			p.decInflight()
			sb.FinishNotify() // may recycle sb: last touch
		case sandbox.StateTrapped:
			w.trapped.Add(1)
			p.decInflight()
			sb.FinishNotify() // may recycle sb: last touch
		}
	}
}

// admit pulls new requests from the distribution structure into the local
// round-robin queue, bounded by MaxLocalRunq. The paper integrates request
// dequeueing into the scheduling loop so newly arrived short functions
// immediately share the core with long-running sandboxes (temporal
// isolation across admission).
func (w *worker) admit() {
	p := w.pool
	room := p.cfg.MaxLocalRunq - w.runq.Len()
	if room <= 0 {
		return
	}
	switch p.cfg.Distribution {
	case DistWorkStealing:
		w.drainInbox(room)
		if w.runq.Len() == 0 {
			w.steal()
		}
	case DistGlobalDeque:
		// One element per round, as in the paper's original loop.
		if sb, ok := p.global.Steal(); ok {
			w.steals.Add(1)
			w.runq.Push(sb)
		}
	case DistGlobalLock:
		p.lockQ.mu.Lock()
		if len(p.lockQ.q) > 0 {
			sb := p.lockQ.q[0]
			copy(p.lockQ.q, p.lockQ.q[1:])
			p.lockQ.q = p.lockQ.q[:len(p.lockQ.q)-1]
			p.lockQ.n.Store(int64(len(p.lockQ.q)))
			p.lockQ.mu.Unlock()
			w.runq.Push(sb)
			return
		}
		p.lockQ.mu.Unlock()
	case DistStatic:
		w.drainInbox(room)
	}
}

// drainInbox moves up to room sandboxes from the overflow chain and the
// inbox into the run queue; anything beyond room waits on the overflow
// chain (it is already admitted, just not yet queued).
func (w *worker) drainInbox(room int) {
	for room > 0 && w.overflowHead != nil {
		sb := w.overflowHead
		w.overflowHead = sb.SchedNext
		if w.overflowHead == nil {
			w.overflowTail = nil
		}
		sb.SchedNext = nil
		w.overflowN--
		w.runq.Push(sb)
		room--
	}
	if w.inbox.n.Load() == 0 {
		return
	}
	chain := w.inbox.takeAll()
	for chain != nil {
		next := chain.SchedNext
		chain.SchedNext = nil
		if room > 0 {
			w.runq.Push(chain)
			room--
		} else {
			w.overflowAppend(chain)
		}
		chain = next
	}
}

func (w *worker) overflowAppend(sb *sandbox.Sandbox) {
	sb.SchedNext = nil
	if w.overflowTail == nil {
		w.overflowHead, w.overflowTail = sb, sb
	} else {
		w.overflowTail.SchedNext = sb
		w.overflowTail = sb
	}
	w.overflowN++
}

// steal finds a victim and moves work here: first half of a peer's run
// queue in one batched transfer, then — if every run queue is empty — a
// busy peer's whole unadmitted inbox, so queued submissions never wait for
// their worker to surface from a long quantum.
func (w *worker) steal() {
	p := w.pool
	n := len(p.workers)
	if n == 1 {
		return
	}
	max := p.cfg.MaxLocalRunq - w.runq.Len()
	if max > stealBatchMax {
		max = stealBatchMax
	}
	if max <= 0 {
		return
	}
	start := int(p.rr.Add(1) % uint64(n))
	for i := 0; i < n; i++ {
		v := p.workers[(start+i)%n]
		if v == w {
			continue
		}
		if k := v.runq.StealBatch(w.stealBuf[:], max); k > 0 {
			for j := 0; j < k; j++ {
				w.runq.Push(w.stealBuf[j])
				w.stealBuf[j] = nil
			}
			w.steals.Add(uint64(k))
			w.stealBatches.Add(1)
			return
		}
	}
	for i := 0; i < n; i++ {
		v := p.workers[(start+i)%n]
		if v == w || v.inbox.len() == 0 {
			continue
		}
		chain := v.inbox.takeAll()
		if chain == nil {
			continue
		}
		k := uint64(0)
		for chain != nil {
			next := chain.SchedNext
			chain.SchedNext = nil
			if w.runq.Len() < p.cfg.MaxLocalRunq {
				w.runq.Push(chain)
			} else {
				w.overflowAppend(chain)
			}
			chain = next
			k++
		}
		w.steals.Add(k)
		w.stealBatches.Add(1)
		return
	}
}

// drainTimers completes blocked I/O whose deadline passed and requeues the
// sandboxes — the per-worker analog of the paper's libuv loop, checked
// before scheduling. The heap makes the no-work-due case O(1) instead of a
// scan over every blocked sandbox.
func (w *worker) drainTimers() {
	if w.timers.len() == 0 {
		return
	}
	now := time.Now().UnixNano()
	for {
		sb, ok := w.timers.popDue(now)
		if !ok {
			return
		}
		if err := sb.CompletePending(); err != nil {
			sb.Fail(err)
			w.trapped.Add(1)
			w.pool.decInflight()
			sb.FinishNotify() // may recycle sb: last touch
			continue
		}
		w.runq.Push(sb)
	}
}

// readyWork is the post-arm re-check: every source that could hold or
// produce work for this worker. Called with the parker armed, it closes
// the lost-wakeup window — either this check observes work published
// before the wake attempt, or the waker observes the armed parker and
// delivers a token.
func (w *worker) readyWork() bool {
	p := w.pool
	if w.inbox.n.Load() > 0 || w.runq.Len() > 0 || w.overflowN > 0 {
		return true
	}
	if at, ok := w.timers.nextAt(); ok && at <= time.Now().UnixNano() {
		return true
	}
	if p.stopped.Load() {
		return true
	}
	switch p.cfg.Distribution {
	case DistWorkStealing:
		for _, v := range p.workers {
			if v != w && (v.runq.Len() > 0 || v.inbox.n.Load() > 0) {
				return true
			}
		}
	case DistGlobalDeque:
		return p.global.Size() > 0 || len(p.submitCh) > 0
	case DistGlobalLock:
		return p.lockQ.n.Load() > 0
	}
	return false
}

// idleWait parks the worker until new work may be available: a targeted
// wake token, the next blocked-I/O deadline, or the backstop poll.
func (w *worker) idleWait() {
	p := w.pool
	w.park.arm(&p.nparked)
	if w.readyWork() {
		w.park.disarm(&p.nparked)
		return
	}
	wait := p.cfg.IdlePoll
	if at, ok := w.timers.nextAt(); ok {
		d := time.Duration(at - time.Now().UnixNano())
		if d <= 0 {
			w.park.disarm(&p.nparked)
			return
		}
		if d < wait {
			wait = d
		}
	}
	if w.idleTimer == nil {
		w.idleTimer = time.NewTimer(wait)
	} else {
		w.idleTimer.Reset(wait)
	}
	w.park.wait(&p.nparked, w.idleTimer, p.stopCh)
	// Quiesce the timer for the next Reset. This goroutine is the only
	// receiver, so a non-blocking drain after a failed Stop is race-free.
	if !w.idleTimer.Stop() {
		select {
		case <-w.idleTimer.C:
		default:
		}
	}
}

// drainStop abandons local work so shutdown is bounded even when a sandbox
// would never finish (cooperative CPU hogs).
func (w *worker) drainStop() {
	p := w.pool
	for {
		sb, ok := w.runq.Pop()
		if !ok {
			break
		}
		p.finish(sb, true)
	}
	for w.timers.len() > 0 {
		p.finish(w.timers.pop(), true)
	}
	for w.overflowHead != nil {
		sb := w.overflowHead
		w.overflowHead = sb.SchedNext
		sb.SchedNext = nil
		p.finish(sb, true)
	}
	w.overflowTail = nil
	w.overflowN = 0
	p.failInbox(w)
	w.qlen.Store(0)
}

package sched

import (
	"sync/atomic"

	"sledge/internal/sandbox"
)

// inbox is a per-worker multi-producer submission stack: listeners push
// with a single CAS, and a consumer takes the whole chain with one Swap.
// It is the structure that lets Submit hand a sandbox directly to a chosen
// worker with no dispatcher goroutine and no channel hop. Sandboxes link
// through their intrusive SchedNext field, so pushing allocates nothing.
//
// The chain is LIFO; takeAll reverses it so consumers see submission
// (FIFO) order. Any goroutine may call takeAll — the worker drains its own
// inbox every scheduling round, and an idle peer may swipe a busy worker's
// backlog wholesale (inbox stealing), so queued work never waits for the
// victim to surface from a long quantum.
type inbox struct {
	head atomic.Pointer[sandbox.Sandbox]
	// n tracks the approximate chain length. It is the published load
	// signal read lock-free by Submit's least-loaded scan, the idle
	// re-check, and Pool.QueueDepth.
	n atomic.Int64
}

// push adds sb to the chain. Safe from any goroutine.
func (b *inbox) push(sb *sandbox.Sandbox) {
	for {
		old := b.head.Load()
		sb.SchedNext = old
		if b.head.CompareAndSwap(old, sb) {
			b.n.Add(1)
			return
		}
	}
}

// takeAll detaches the whole chain and returns it in FIFO (submission)
// order. Safe from any goroutine; concurrent callers get disjoint chains.
func (b *inbox) takeAll() *sandbox.Sandbox {
	chain := b.head.Swap(nil)
	if chain == nil {
		return nil
	}
	// Reverse to FIFO order, counting as we go.
	var fifo *sandbox.Sandbox
	n := int64(0)
	for chain != nil {
		next := chain.SchedNext
		chain.SchedNext = fifo
		fifo = chain
		chain = next
		n++
	}
	b.n.Add(-n)
	return fifo
}

// len reports the approximate chain length.
func (b *inbox) len() int {
	n := b.n.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

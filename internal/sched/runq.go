package sched

import "sync/atomic"

// Runq is a per-worker run queue in the style of the Go runtime's per-P
// queue: a growable power-of-two ring with monotonically increasing head
// and tail counters. Exactly one owner (the worker) pushes at the tail;
// the owner pops FIFO from the head; any peer may steal a batch from the
// head.
//
// The protocol differs from the global Chase–Lev deque (deque.go) in one
// deliberate way: the owner's pop also goes through a CAS on head. In
// Chase–Lev the owner consumes bottom-side elements without touching top,
// which is what makes multi-element stealing unsound there — a thief that
// reads k elements and then CASes top can race an owner that silently
// consumed part of that range from the other end. Here every consumer
// (owner and thieves alike) reserves slots by CASing head, so a thief may
// read a whole range [h, h+n) first and commit it with a single CAS: if
// any other consumer took any of those slots, head moved and the CAS
// fails. The counters are never masked, so there is no ABA.
//
// Growth is owner-only, like Chase–Lev: the owner copies live slots by
// absolute index into a bigger ring and swaps the array pointer. A thief
// holding the old array still reads correct values for any range its CAS
// can commit, because the copy preserves index→value and the owner only
// writes fresh slots into the new array.
type Runq[T any] struct {
	head  atomic.Int64
	tail  atomic.Int64
	array atomic.Pointer[ring[T]]
}

// NewRunq returns an empty run queue with the given initial capacity
// (rounded up to a power of two, minimum 8).
func NewRunq[T any](capacity int) *Runq[T] {
	size := int64(8)
	for size < int64(capacity) {
		size *= 2
	}
	q := &Runq[T]{}
	q.array.Store(newRing[T](size))
	return q
}

// Push appends x at the tail. Only the owner may call it.
func (q *Runq[T]) Push(x *T) {
	t := q.tail.Load()
	h := q.head.Load()
	a := q.array.Load()
	if t-h >= int64(len(a.buf)) {
		a = q.grow(a, h, t)
	}
	a.buf[t&a.mask].Store(x)
	q.tail.Store(t + 1)
}

func (q *Runq[T]) grow(old *ring[T], h, t int64) *ring[T] {
	bigger := newRing[T](int64(len(old.buf)) * 2)
	for i := h; i < t; i++ {
		bigger.buf[i&bigger.mask].Store(old.buf[i&old.mask].Load())
	}
	q.array.Store(bigger)
	return bigger
}

// Pop removes the oldest element (FIFO — the round-robin order). Only the
// owner calls it, but it still reserves the slot with a CAS so that it
// composes with concurrent batched stealing.
func (q *Runq[T]) Pop() (*T, bool) {
	for {
		h := q.head.Load()
		t := q.tail.Load()
		if h >= t {
			return nil, false
		}
		a := q.array.Load()
		x := a.buf[h&a.mask].Load()
		if q.head.CompareAndSwap(h, h+1) {
			return x, true
		}
	}
}

// stealAttempts bounds StealBatch's CAS retries: a failed CAS means some
// other consumer made progress on this queue, so giving up (and letting the
// caller pick another victim or re-loop) beats spinning against the owner.
const stealAttempts = 4

// StealBatch moves up to max elements — at most half the victim's queue,
// rounded up — into dst. Safe from any goroutine. It reads the candidate
// range first and commits it with a single CAS on head, so either the whole
// batch transfers or none of it does; no element is lost or duplicated. dst
// must have room for max elements. It returns the number stolen.
func (q *Runq[T]) StealBatch(dst []*T, max int) int {
	for attempt := 0; attempt < stealAttempts; attempt++ {
		h := q.head.Load()
		t := q.tail.Load()
		n := t - h
		if n <= 0 {
			return 0
		}
		n = n - n/2 // half, rounded up
		if n > int64(max) {
			n = int64(max)
		}
		a := q.array.Load()
		for i := int64(0); i < n; i++ {
			dst[i] = a.buf[(h+i)&a.mask].Load()
		}
		if q.head.CompareAndSwap(h, h+n) {
			return int(n)
		}
	}
	return 0
}

// Len reports the number of queued elements (approximate under
// concurrency, exact when quiescent).
func (q *Runq[T]) Len() int {
	n := q.tail.Load() - q.head.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

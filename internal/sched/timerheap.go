package sched

import (
	"time"

	"sledge/internal/sandbox"
)

// timerHeap is a worker-local binary min-heap of blocked sandboxes keyed by
// their pending-I/O deadline — the replacement for the O(n)-per-iteration
// linear scan over a blocked queue. Peeking the next deadline is O(1), so
// the scheduling loop pays for blocked sandboxes only when one is actually
// due, and the idle parker can sleep exactly until the earliest completion.
//
// The heap is single-owner (only the owning worker touches it) and holds no
// locks; the backing slice is reused across pushes and pops so the steady
// state allocates nothing.
type timerHeap struct {
	entries []timerEntry
}

type timerEntry struct {
	at int64 // deadline, unix nanoseconds
	sb *sandbox.Sandbox
}

func (h *timerHeap) len() int { return len(h.entries) }

// nextAt reports the earliest deadline, in unix nanoseconds.
func (h *timerHeap) nextAt() (int64, bool) {
	if len(h.entries) == 0 {
		return 0, false
	}
	return h.entries[0].at, true
}

// push inserts a blocked sandbox keyed by its I/O deadline.
func (h *timerHeap) push(sb *sandbox.Sandbox, at time.Time) {
	h.entries = append(h.entries, timerEntry{at: at.UnixNano(), sb: sb})
	i := len(h.entries) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.entries[parent].at <= h.entries[i].at {
			break
		}
		h.entries[parent], h.entries[i] = h.entries[i], h.entries[parent]
		i = parent
	}
}

// popDue removes and returns the root if its deadline is at or before now
// (unix nanoseconds).
func (h *timerHeap) popDue(now int64) (*sandbox.Sandbox, bool) {
	if len(h.entries) == 0 || h.entries[0].at > now {
		return nil, false
	}
	return h.pop(), true
}

// pop removes and returns the earliest entry. Callers check len first.
func (h *timerHeap) pop() *sandbox.Sandbox {
	sb := h.entries[0].sb
	last := len(h.entries) - 1
	h.entries[0] = h.entries[last]
	h.entries[last] = timerEntry{} // drop the sandbox reference
	h.entries = h.entries[:last]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < last && h.entries[l].at < h.entries[min].at {
			min = l
		}
		if r < last && h.entries[r].at < h.entries[min].at {
			min = r
		}
		if min == i {
			break
		}
		h.entries[i], h.entries[min] = h.entries[min], h.entries[i]
		i = min
	}
	return sb
}

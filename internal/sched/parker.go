package sched

import (
	"sync/atomic"
	"time"
)

// parker is a per-worker parking slot supporting targeted wakeups. An idle
// worker arms its parker, re-checks every work source, and only then
// blocks; a submitter that claims the armed slot (one CAS) delivers a wake
// token straight to that worker. This replaces the old shared wake channel,
// whose single anonymous token could be consumed by a worker that then
// lost the steal race and parked — leaving queued work waiting out the
// idle-poll interval (the lost-wakeup window).
//
// Protocol:
//
//	worker: armed.Store(1) → re-check work sources → park on ch
//	waker:  publish work   → armed.CompareAndSwap(1, 0) → ch <- token
//
// The arm store and the work publication are both sequentially consistent
// atomics, so at least one side sees the other: either the worker's
// re-check observes the new work, or the waker observes the armed slot and
// delivers a token. A token, once won by CAS, is always delivered and
// always consumed (the worker drains ch before re-arming), so it cannot be
// lost or double-granted.
type parker struct {
	// armed is 1 while the worker is parked or about to park. Transitions
	// 1→0 are claimed by exactly one CAS winner: either a waker (which
	// then sends the token) or the worker itself (timer expiry, stop, or
	// the post-arm re-check finding work).
	armed atomic.Int32
	ch    chan struct{}
}

func newParker() *parker {
	return &parker{ch: make(chan struct{}, 1)}
}

// arm publishes the worker as parked. The caller must re-check all work
// sources after arming, and then either block on wait or call disarm.
func (k *parker) arm(nparked *atomic.Int64) {
	k.armed.Store(1)
	nparked.Add(1)
}

// disarm withdraws an armed parker without blocking (work was found, the
// park timed out, or the pool is stopping). If a waker claimed the slot
// first, its token is already in flight — consume it so the channel is
// empty before the next arm.
func (k *parker) disarm(nparked *atomic.Int64) {
	if k.armed.CompareAndSwap(1, 0) {
		nparked.Add(-1)
		return
	}
	<-k.ch
}

// wake claims an armed parker and delivers its token. It reports whether
// this call woke the worker. Safe from any goroutine.
func (k *parker) wake(nparked *atomic.Int64) bool {
	if k.armed.CompareAndSwap(1, 0) {
		nparked.Add(-1)
		k.ch <- struct{}{} // cap 1, drained before re-arm: never blocks
		return true
	}
	return false
}

// wait blocks until a wake token, the timer, or stop. It returns with the
// parker disarmed and the token channel empty.
func (k *parker) wait(nparked *atomic.Int64, timer *time.Timer, stop <-chan struct{}) {
	select {
	case <-k.ch:
		// The waker already disarmed and decremented on our behalf.
	case <-timer.C:
		k.disarm(nparked)
	case <-stop:
		k.disarm(nparked)
	}
}

package sched

import (
	"sync"
	"testing"
	"time"

	"sledge/internal/sandbox"
)

// TestAffinityWorkConservation is the satellite check for pipeline
// continuation affinity: SubmitAffine biases a continuation toward one
// worker's queue, but affinity is a hint, not a pin. When the preferred
// worker is stuck in a long cooperative quantum, idle peers must steal the
// queued continuations — affinity never defeats work conservation.
//
// Static distribution is the documented exception: there is no stealing, so
// continuations behind a hog simply wait; the test only demands eventual
// completion there.
func TestAffinityWorkConservation(t *testing.T) {
	for _, dist := range []Distribution{DistWorkStealing, DistGlobalLock, DistGlobalDeque, DistStatic} {
		t.Run(dist.String(), func(t *testing.T) {
			cm := compileTestModule(t, spinSrc)
			// Cooperative policy: the hog's quantum cannot be preempted,
			// so its worker stays busy for the whole spin.
			p := NewPool(Config{Workers: 4, Distribution: dist, Policy: PolicyCooperative})
			defer p.Stop()

			// 20M spin iterations: ~1000x the combined continuation work,
			// so the hog reliably outlasts them without dominating the
			// race-instrumented run.
			hogLen := 20_000
			if dist == DistStatic {
				hogLen = 5_000 // only eventual completion is asserted; keep it quick
			}
			var hogWG sync.WaitGroup
			hogWG.Add(1)
			hog, err := sandbox.New(cm, make([]byte, hogLen), sandbox.Options{})
			if err != nil {
				t.Fatal(err)
			}
			hog.OnComplete = func(*sandbox.Sandbox) { hogWG.Done() }
			if err := p.Submit(hog); err != nil {
				t.Fatal(err)
			}

			// Learn which worker the hog landed on, the way a pipeline
			// executor would pick its affinity target.
			var hogWorker int32 = -1
			for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
				if hogWorker = hog.LastWorker.Load(); hogWorker >= 0 {
					break
				}
				time.Sleep(100 * time.Microsecond)
			}
			if hogWorker < 0 {
				t.Fatalf("hog never started: state %s", hog.State())
			}

			// Pile continuations onto the hogged worker's queue.
			const conts = 32
			var wg sync.WaitGroup
			boxes := make([]*sandbox.Sandbox, conts)
			for i := range boxes {
				sb, err := sandbox.New(cm, make([]byte, 1), sandbox.Options{})
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				sb.OnComplete = func(*sandbox.Sandbox) { wg.Done() }
				boxes[i] = sb
				if err := p.SubmitAffine(sb, int(hogWorker)); err != nil {
					t.Fatalf("SubmitAffine: %v", err)
				}
			}

			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatalf("continuations starved behind the hog: stats %+v", p.Stats())
			}
			if dist != DistStatic {
				// The point of the test: the continuations finished while
				// their preferred worker was still hogged, which is only
				// possible if idle peers took them.
				if hog.State() == sandbox.StateComplete {
					t.Skip("hog finished before the continuations; machine too fast to observe stealing")
				}
			}
			hogWG.Wait()
			if hog.State() != sandbox.StateComplete {
				t.Errorf("hog state %s", hog.State())
			}
			for i, sb := range boxes {
				if sb.State() != sandbox.StateComplete {
					t.Errorf("continuation %d state %s (err %v)", i, sb.State(), sb.Err)
				}
			}
		})
	}
}

// TestSubmitAffineFallbacks: an out-of-range hint must behave exactly like
// Submit, and a stopped pool must refuse the sandbox.
func TestSubmitAffineFallbacks(t *testing.T) {
	cm := compileTestModule(t, spinSrc)
	p := NewPool(Config{Workers: 2})
	var wg sync.WaitGroup
	for _, hint := range []int{-1, 99} {
		sb, err := sandbox.New(cm, make([]byte, 1), sandbox.Options{})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		sb.OnComplete = func(*sandbox.Sandbox) { wg.Done() }
		if err := p.SubmitAffine(sb, hint); err != nil {
			t.Fatalf("SubmitAffine(%d): %v", hint, err)
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("fallback submissions never completed")
	}
	p.Stop()
	sb, err := sandbox.New(cm, nil, sandbox.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SubmitAffine(sb, 0); err != ErrStopped {
		t.Errorf("SubmitAffine after Stop = %v, want ErrStopped", err)
	}
}

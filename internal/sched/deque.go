// Package sched implements the Sledge serverless-first scheduler (§3.4,
// §4). Work distribution is per-worker: Submit pushes each sandbox
// directly into the least-loaded worker's lock-free inbox, every worker
// owns a batch-stealable run queue (Runq) scheduled with preemptive
// round-robin under a configurable quantum (temporal isolation), idle
// workers steal half a victim's queue in one transfer, and parked workers
// receive targeted wakeups. Blocked sandboxes sit in the worker's deadline
// heap and wake on I/O completion — the reproduction of the paper's libuv
// integration. The paper's original topology — one global Chase–Lev deque
// fed through a dispatcher goroutine — is preserved as the DistGlobalDeque
// ablation, alongside a mutex global queue (DistGlobalLock) and static
// assignment (DistStatic).
package sched

import "sync/atomic"

// Deque is a lock-free Chase–Lev work-stealing deque (Chase & Lev, SPAA'05;
// memory-order treatment after Lê et al., PPoPP'13). A single owner pushes
// and pops at the bottom; any number of thieves steal from the top. It
// backs the DistGlobalDeque ablation: the dispatcher goroutine is the
// owner; worker cores are the thieves.
type Deque[T any] struct {
	top    atomic.Int64
	bottom atomic.Int64
	array  atomic.Pointer[ring[T]]
}

type ring[T any] struct {
	mask int64
	buf  []atomic.Pointer[T]
}

func newRing[T any](size int64) *ring[T] {
	return &ring[T]{mask: size - 1, buf: make([]atomic.Pointer[T], size)}
}

// NewDeque returns an empty deque with the given initial capacity
// (rounded up to a power of two, minimum 8).
func NewDeque[T any](capacity int) *Deque[T] {
	size := int64(8)
	for size < int64(capacity) {
		size *= 2
	}
	d := &Deque[T]{}
	d.array.Store(newRing[T](size))
	return d
}

// PushBottom adds x at the bottom. Only the owner may call it.
func (d *Deque[T]) PushBottom(x *T) {
	b := d.bottom.Load()
	t := d.top.Load()
	a := d.array.Load()
	if b-t >= int64(len(a.buf)) {
		a = d.grow(a, t, b)
	}
	a.buf[b&a.mask].Store(x)
	d.bottom.Store(b + 1)
}

func (d *Deque[T]) grow(old *ring[T], t, b int64) *ring[T] {
	bigger := newRing[T](int64(len(old.buf)) * 2)
	for i := t; i < b; i++ {
		bigger.buf[i&bigger.mask].Store(old.buf[i&old.mask].Load())
	}
	d.array.Store(bigger)
	return bigger
}

// PopBottom removes the most recently pushed element. Only the owner may
// call it.
func (d *Deque[T]) PopBottom() (*T, bool) {
	b := d.bottom.Load() - 1
	a := d.array.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore.
		d.bottom.Store(t)
		return nil, false
	}
	x := a.buf[b&a.mask].Load()
	if t == b {
		// Last element: race against thieves for it.
		won := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(t + 1)
		if !won {
			return nil, false
		}
	}
	return x, true
}

// Steal removes the oldest element. Safe from any goroutine. A false return
// means the deque was empty or the steal lost a race; callers typically
// retry on their next idle iteration.
func (d *Deque[T]) Steal() (*T, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil, false
	}
	a := d.array.Load()
	x := a.buf[t&a.mask].Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return nil, false
	}
	return x, true
}

// Size reports the approximate number of queued elements.
func (d *Deque[T]) Size() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

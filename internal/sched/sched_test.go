package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"sledge/internal/abi"
	"sledge/internal/engine"
	"sledge/internal/sandbox"
	"sledge/internal/wcc"
)

// ---- deque ----

func TestDequeLIFOOwner(t *testing.T) {
	d := NewDeque[int](4)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} // forces growth past 8
	for i := range vals {
		d.PushBottom(&vals[i])
	}
	if d.Size() != len(vals) {
		t.Errorf("Size = %d", d.Size())
	}
	for i := len(vals) - 1; i >= 0; i-- {
		x, ok := d.PopBottom()
		if !ok || *x != vals[i] {
			t.Fatalf("PopBottom = %v, %v; want %d", x, ok, vals[i])
		}
	}
	if _, ok := d.PopBottom(); ok {
		t.Error("PopBottom on empty succeeded")
	}
}

func TestDequeStealFIFO(t *testing.T) {
	d := NewDeque[int](8)
	vals := []int{1, 2, 3}
	for i := range vals {
		d.PushBottom(&vals[i])
	}
	for _, want := range vals {
		x, ok := d.Steal()
		if !ok || *x != want {
			t.Fatalf("Steal = %v, %v; want %d", x, ok, want)
		}
	}
	if _, ok := d.Steal(); ok {
		t.Error("Steal on empty succeeded")
	}
}

// TestDequeConcurrent is the core safety property: with one owner and many
// thieves, every pushed element is consumed exactly once.
func TestDequeConcurrent(t *testing.T) {
	const (
		numItems   = 20000
		numThieves = 4
	)
	d := NewDeque[int](8)
	items := make([]int, numItems)
	var consumed atomic.Int64
	seen := make([]atomic.Int32, numItems)

	var wg sync.WaitGroup
	done := make(chan struct{})
	for th := 0; th < numThieves; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if x, ok := d.Steal(); ok {
					seen[*x].Add(1)
					consumed.Add(1)
				} else {
					select {
					case <-done:
						if _, ok := d.Steal(); !ok {
							return
						}
					default:
					}
				}
			}
		}()
	}
	// Owner: push all items, popping some back.
	popped := 0
	for i := 0; i < numItems; i++ {
		items[i] = i
		d.PushBottom(&items[i])
		if i%7 == 0 {
			if x, ok := d.PopBottom(); ok {
				seen[*x].Add(1)
				consumed.Add(1)
				popped++
			}
		}
	}
	// Drain the remainder as the owner.
	for {
		x, ok := d.PopBottom()
		if !ok {
			break
		}
		seen[*x].Add(1)
		consumed.Add(1)
	}
	close(done)
	wg.Wait()
	// Final sweep: thieves may have lost races at shutdown.
	for {
		x, ok := d.Steal()
		if !ok {
			break
		}
		seen[*x].Add(1)
		consumed.Add(1)
	}

	if got := consumed.Load(); got != numItems {
		t.Fatalf("consumed %d of %d items", got, numItems)
	}
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("item %d consumed %d times", i, n)
		}
	}
}

func TestDequeSizeNeverNegativeProperty(t *testing.T) {
	f := func(ops []bool) bool {
		d := NewDeque[int](8)
		v := 1
		for _, push := range ops {
			if push {
				d.PushBottom(&v)
			} else {
				d.PopBottom()
			}
			if d.Size() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// ---- pool ----

const spinSrc = `
static u8 out[4];

export i32 main() {
	i32 n = sys_req_len();
	i32 acc = 0;
	for (i32 i = 0; i < n * 1000; i = i + 1) {
		acc = acc + i;
	}
	out[0] = 111; // 'o'
	sys_write(out, 1);
	return acc;
}
`

func compileTestModule(t *testing.T, src string) *engine.CompiledModule {
	t.Helper()
	res, err := wcc.Compile(src, wcc.Options{})
	if err != nil {
		t.Fatalf("wcc.Compile: %v", err)
	}
	cm, err := engine.CompileBinary(res.Binary, abi.Registry(), engine.Config{})
	if err != nil {
		t.Fatalf("engine.CompileBinary: %v", err)
	}
	return cm
}

func runBatch(t *testing.T, p *Pool, cm *engine.CompiledModule, n int, reqLen int) []*sandbox.Sandbox {
	t.Helper()
	var wg sync.WaitGroup
	out := make([]*sandbox.Sandbox, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sb, err := sandbox.New(cm, make([]byte, reqLen), sandbox.Options{})
		if err != nil {
			t.Fatalf("sandbox.New: %v", err)
		}
		sb.OnComplete = func(*sandbox.Sandbox) { wg.Done() }
		out[i] = sb
		if err := p.Submit(sb); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("batch did not complete: stats %+v", p.Stats())
	}
	return out
}

func TestPoolCompletesWork(t *testing.T) {
	for _, dist := range []Distribution{DistWorkStealing, DistGlobalDeque, DistGlobalLock, DistStatic} {
		t.Run(dist.String(), func(t *testing.T) {
			cm := compileTestModule(t, spinSrc)
			p := NewPool(Config{Workers: 2, Distribution: dist})
			defer p.Stop()
			boxes := runBatch(t, p, cm, 40, 10)
			for _, sb := range boxes {
				if sb.State() != sandbox.StateComplete {
					t.Errorf("sandbox %d state %s (err %v)", sb.ID, sb.State(), sb.Err)
				}
				if string(sb.Response()) != "o" {
					t.Errorf("sandbox %d response %q", sb.ID, sb.Response())
				}
			}
			st := p.Stats()
			if st.Completed != 40 {
				t.Errorf("Completed = %d, want 40", st.Completed)
			}
			if !p.Quiesce(time.Second) {
				t.Error("pool did not quiesce")
			}
		})
	}
}

func TestPreemptionOccurs(t *testing.T) {
	cm := compileTestModule(t, spinSrc)
	// Tiny quantum forces many preemptions on a long spin.
	p := NewPool(Config{Workers: 1, Quantum: 100 * time.Microsecond})
	defer p.Stop()
	boxes := runBatch(t, p, cm, 2, 2000) // 2M iterations each
	st := p.Stats()
	if st.Preemptions == 0 {
		t.Errorf("no preemptions recorded: %+v", st)
	}
	for _, sb := range boxes {
		if sb.Preemptions == 0 {
			t.Errorf("sandbox %d never preempted", sb.ID)
		}
	}
}

func TestCooperativeRunsToCompletion(t *testing.T) {
	cm := compileTestModule(t, spinSrc)
	p := NewPool(Config{Workers: 1, Policy: PolicyCooperative})
	defer p.Stop()
	boxes := runBatch(t, p, cm, 4, 500)
	st := p.Stats()
	if st.Preemptions != 0 {
		t.Errorf("cooperative policy preempted %d times", st.Preemptions)
	}
	for _, sb := range boxes {
		if sb.State() != sandbox.StateComplete {
			t.Errorf("sandbox %d state %s", sb.ID, sb.State())
		}
	}
}

// TestTemporalIsolation reproduces the §3.4 motivation: under preemptive
// round-robin a short function's completion is not serialized behind a
// CPU-hog, while under cooperative scheduling it is.
func TestTemporalIsolation(t *testing.T) {
	cm := compileTestModule(t, spinSrc)
	measure := func(policy Policy) time.Duration {
		p := NewPool(Config{Workers: 1, Policy: policy, Quantum: time.Millisecond})
		defer p.Stop()
		var wg sync.WaitGroup
		// The hog: large request -> long spin.
		hog, err := sandbox.New(cm, make([]byte, 20000), sandbox.Options{Tenant: "hog"})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		hog.OnComplete = func(*sandbox.Sandbox) { wg.Done() }
		if err := p.Submit(hog); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // let the hog start running
		short, err := sandbox.New(cm, make([]byte, 1), sandbox.Options{Tenant: "short"})
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan time.Time, 1)
		wg.Add(1)
		short.OnComplete = func(*sandbox.Sandbox) { done <- time.Now(); wg.Done() }
		start := time.Now()
		if err := p.Submit(short); err != nil {
			t.Fatal(err)
		}
		at := <-done
		wg.Wait()
		return at.Sub(start)
	}
	preemptive := measure(PolicyPreemptiveRR)
	cooperative := measure(PolicyCooperative)
	if preemptive >= cooperative {
		t.Errorf("preemptive latency %v not better than cooperative %v", preemptive, cooperative)
	}
}

const kvSrc = `
static u8 key[4];
static u8 val[32];

export i32 main() {
	key[0] = 107;
	i32 n = sys_kv_get(key, 1, val, 32);
	if (n > 0) {
		sys_write(val, n);
	}
	return n;
}
`

func TestBlockedIOCompletesViaEventLoop(t *testing.T) {
	cm := compileTestModule(t, kvSrc)
	p := NewPool(Config{Workers: 1})
	defer p.Stop()
	store := abi.NewMapKV()
	store.Set("k", []byte("async-value"))
	kv := &abi.LatentKV{KVStore: store, Delay: 3 * time.Millisecond}

	sb, err := sandbox.New(cm, nil, sandbox.Options{KV: kv})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	sb.OnComplete = func(*sandbox.Sandbox) { close(done) }
	start := time.Now()
	if err := p.Submit(sb); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("blocked sandbox never completed (state %s)", sb.State())
	}
	if got := time.Since(start); got < 3*time.Millisecond {
		t.Errorf("completed in %v, before the simulated I/O latency", got)
	}
	if string(sb.Response()) != "async-value" {
		t.Errorf("response %q", sb.Response())
	}
	if st := p.Stats(); st.Blocked != 1 {
		t.Errorf("Blocked = %d, want 1", st.Blocked)
	}
}

func TestSubmitAfterStop(t *testing.T) {
	cm := compileTestModule(t, spinSrc)
	p := NewPool(Config{Workers: 1})
	p.Stop()
	sb, err := sandbox.New(cm, nil, sandbox.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(sb); err != ErrStopped {
		t.Errorf("Submit after stop: %v", err)
	}
	p.Stop() // idempotent
}

func TestWorkConservation(t *testing.T) {
	// Least-loaded placement spreads an even batch perfectly, so to
	// observe stealing the load must be unbalanced after placement: give
	// each worker one hog of very different lengths plus queued followers.
	// The workers whose hogs finish early go idle and must steal the
	// followers still queued behind the long hogs.
	cm := compileTestModule(t, spinSrc)
	p := NewPool(Config{Workers: 4, Quantum: time.Millisecond})
	defer p.Stop()

	var wg sync.WaitGroup
	submit := func(reqLen int) {
		wg.Add(1)
		sb, err := sandbox.New(cm, make([]byte, reqLen), sandbox.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sb.OnComplete = func(*sandbox.Sandbox) { wg.Done() }
		if err := p.Submit(sb); err != nil {
			t.Fatal(err)
		}
	}
	// One hog per worker: one tiny, three long.
	submit(2)
	for i := 0; i < 3; i++ {
		submit(4000)
	}
	// Followers queue behind the hogs (every worker already has load 1).
	for i := 0; i < 12; i++ {
		submit(200)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("batch did not complete: stats %+v", p.Stats())
	}
	st := p.Stats()
	if st.Completed != 16 {
		t.Errorf("Completed = %d, want 16", st.Completed)
	}
	if st.Steals == 0 {
		t.Error("no steals recorded under work-stealing distribution")
	}
}

// TestShortStolenBehindHogs is the fairness property: a short function that
// placement queued behind a long hog must not wait for the hog — an idle
// peer steals and completes it. Cooperative mode is the sharp version (the
// hog never yields, so without stealing the short would wait the hog's
// entire runtime); preemptive mode must preserve the property too.
func TestShortStolenBehindHogs(t *testing.T) {
	cm := compileTestModule(t, spinSrc)
	for _, policy := range []Policy{PolicyPreemptiveRR, PolicyCooperative} {
		t.Run(policy.String(), func(t *testing.T) {
			p := NewPool(Config{Workers: 2, Policy: policy, Quantum: time.Millisecond})
			defer p.Stop()

			var wg sync.WaitGroup
			submit := func(reqLen int, onDone func()) {
				wg.Add(1)
				sb, err := sandbox.New(cm, make([]byte, reqLen), sandbox.Options{})
				if err != nil {
					t.Fatal(err)
				}
				sb.OnComplete = func(*sandbox.Sandbox) {
					if onDone != nil {
						onDone()
					}
					wg.Done()
				}
				if err := p.Submit(sb); err != nil {
					t.Fatal(err)
				}
			}

			var hogDone, shortsDone atomic.Int64
			// The hog occupies one worker for many quanta.
			start := time.Now()
			var hogAt, lastShortAt atomic.Int64
			submit(20000, func() { hogDone.Add(1); hogAt.Store(int64(time.Since(start))) })
			// Shorts tie-break across both workers, so some queue behind
			// the hog; the other worker must steal those.
			for i := 0; i < 6; i++ {
				submit(2, func() {
					shortsDone.Add(1)
					lastShortAt.Store(int64(time.Since(start)))
				})
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatalf("batch did not complete: stats %+v", p.Stats())
			}
			hogLat := time.Duration(hogAt.Load())
			shortLat := time.Duration(lastShortAt.Load())
			if shortLat >= hogLat/2 {
				t.Errorf("last short finished at %v, not well before the hog at %v", shortLat, hogLat)
			}
			if st := p.Stats(); st.Steals == 0 {
				t.Errorf("no steals: shorts behind the hog were not rescued (stats %+v)", st)
			}
		})
	}
}

// TestNoLostWakeup is the regression test for the lost-wakeup window: with
// the idle poll effectively disabled, every completion must be driven by a
// targeted wakeup. Under the old shared wake channel, a worker could
// consume the single token, lose the steal race, and park — leaving the
// request to wait out the poll interval (here: the 20s test budget).
func TestNoLostWakeup(t *testing.T) {
	for _, dist := range []Distribution{DistWorkStealing, DistGlobalDeque, DistGlobalLock, DistStatic} {
		t.Run(dist.String(), func(t *testing.T) {
			cm := compileTestModule(t, spinSrc)
			const workers = 4
			p := NewPool(Config{
				Workers:      workers,
				Distribution: dist,
				IdlePoll:     time.Hour, // wakeups or bust
			})
			defer p.Stop()
			for round := 0; round < 20; round++ {
				var wg sync.WaitGroup
				for i := 0; i < workers; i++ {
					wg.Add(1)
					sb, err := sandbox.New(cm, make([]byte, 2), sandbox.Options{})
					if err != nil {
						t.Fatal(err)
					}
					sb.OnComplete = func(*sandbox.Sandbox) { wg.Done() }
					if err := p.Submit(sb); err != nil {
						t.Fatal(err)
					}
				}
				done := make(chan struct{})
				go func() { wg.Wait(); close(done) }()
				select {
				case <-done:
				case <-time.After(20 * time.Second):
					t.Fatalf("round %d stalled: a completion waited on the idle poll (stats %+v)", round, p.Stats())
				}
			}
		})
	}
}

// TestQuiesceEventDriven checks both directions of the event-driven wait:
// it times out (returning false) while work is genuinely in flight, and it
// returns promptly once the last sandbox finishes instead of sleeping out a
// poll interval.
func TestQuiesceEventDriven(t *testing.T) {
	cm := compileTestModule(t, spinSrc)
	p := NewPool(Config{Workers: 1, Quantum: time.Millisecond})
	defer p.Stop()
	var wg sync.WaitGroup
	wg.Add(1)
	sb, err := sandbox.New(cm, make([]byte, 5000), sandbox.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var doneAt atomic.Int64
	sb.OnComplete = func(*sandbox.Sandbox) { doneAt.Store(time.Now().UnixNano()); wg.Done() }
	if err := p.Submit(sb); err != nil {
		t.Fatal(err)
	}
	if p.Quiesce(time.Millisecond) {
		t.Error("Quiesce returned true with a sandbox in flight")
	}
	if !p.Quiesce(30 * time.Second) {
		t.Fatal("Quiesce timed out")
	}
	woke := time.Now().UnixNano()
	wg.Wait()
	if lag := time.Duration(woke - doneAt.Load()); lag > 5*time.Second {
		t.Errorf("Quiesce woke %v after completion", lag)
	}
	if !p.Quiesce(time.Millisecond) {
		t.Error("Quiesce on idle pool returned false")
	}
}

// ---- runq ----

func TestRunqFIFOOwner(t *testing.T) {
	q := NewRunq[int](4)
	vals := make([]int, 40) // forces growth
	for i := range vals {
		vals[i] = i
		q.Push(&vals[i])
	}
	if q.Len() != len(vals) {
		t.Errorf("Len = %d", q.Len())
	}
	for i := range vals {
		x, ok := q.Pop()
		if !ok || *x != i {
			t.Fatalf("Pop = %v, %v; want %d", x, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop on empty succeeded")
	}
}

func TestRunqStealBatchTakesHalf(t *testing.T) {
	q := NewRunq[int](16)
	vals := make([]int, 8)
	for i := range vals {
		vals[i] = i
		q.Push(&vals[i])
	}
	dst := make([]*int, 8)
	n := q.StealBatch(dst, 8)
	if n != 4 {
		t.Fatalf("StealBatch took %d of 8, want half", n)
	}
	for i := 0; i < n; i++ {
		if *dst[i] != i {
			t.Errorf("stolen[%d] = %d, want %d (oldest first)", i, *dst[i], i)
		}
	}
	// The remainder pops in order.
	for want := n; want < len(vals); want++ {
		x, ok := q.Pop()
		if !ok || *x != want {
			t.Fatalf("Pop = %v, %v; want %d", x, ok, want)
		}
	}
	// A single element steals whole (half rounded up).
	q.Push(&vals[0])
	if n := q.StealBatch(dst, 8); n != 1 {
		t.Errorf("StealBatch on 1-element queue took %d", n)
	}
}

// TestRunqStealBatchStress is the exactly-once property under -race: one
// owner pushing and popping concurrently with batched thieves, and every
// element consumed exactly once — no loss, no duplication.
func TestRunqStealBatchStress(t *testing.T) {
	const (
		numItems   = 20000
		numThieves = 4
	)
	q := NewRunq[int](8)
	vals := make([]int, numItems)
	consumed := make([]atomic.Int32, numItems)
	var total atomic.Int64

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < numThieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]*int, 16)
			for {
				n := q.StealBatch(dst, len(dst))
				for j := 0; j < n; j++ {
					consumed[*dst[j]].Add(1)
					total.Add(1)
				}
				if n == 0 {
					select {
					case <-stop:
						// One final sweep after the owner finished.
						if q.StealBatch(dst, len(dst)) == 0 {
							return
						}
					default:
					}
				}
			}
		}()
	}
	// Owner: push everything, popping every few pushes like a worker
	// interleaving admission with scheduling.
	for i := 0; i < numItems; i++ {
		vals[i] = i
		q.Push(&vals[i])
		if i%3 == 0 {
			if x, ok := q.Pop(); ok {
				consumed[*x].Add(1)
				total.Add(1)
			}
		}
	}
	for {
		x, ok := q.Pop()
		if !ok {
			break
		}
		consumed[*x].Add(1)
		total.Add(1)
	}
	// Wait for thieves to drain the rest.
	deadline := time.After(10 * time.Second)
	for total.Load() < numItems {
		select {
		case <-deadline:
			t.Fatalf("only %d of %d items consumed", total.Load(), numItems)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
	for i := range consumed {
		if n := consumed[i].Load(); n != 1 {
			t.Fatalf("item %d consumed %d times", i, n)
		}
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d after draining", q.Len())
	}
}

package experiments

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"sledge/internal/admission"
	"sledge/internal/core"
	"sledge/internal/loadgen"
	"sledge/internal/workloads/apps"
)

// RunOverload measures goodput and admitted-request latency under
// open-loop overload, with and without the admission controller. It first
// finds the runtime's closed-loop capacity on the spin workload, then
// offers 1x/2x/4x that rate. The paper's runtime degrades under overload
// (every accepted request queues); the admission controller instead sheds
// the excess at the door so goodput stays near capacity and the latency of
// admitted requests stays bounded by the deadline.
func RunOverload(o Options) ([]*Table, error) {
	workers := o.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 2 {
		// On a single-core host the colocated load generator cannot
		// genuinely over-offer a 1-worker runtime; two workers restore
		// queue pressure at the admission layer.
		workers = 2
	}
	spinIters := 200_000
	capacityReqs := 1500
	pointDur := 2 * time.Second
	deadline := time.Second
	if o.Quick {
		spinIters = 50_000
		capacityReqs = 300
		pointDur = 350 * time.Millisecond
		deadline = 300 * time.Millisecond
	}
	body := apps.SpinRequest(uint32(spinIters))

	// Two identical runtimes, one with the admission controller in front.
	withRT, withURL, err := startOverloadRuntime(workers, &admission.Config{
		DefaultDeadline: deadline,
		// A short admit queue keeps the latency of admitted requests
		// bounded by queue depth x service time instead of by client
		// patience.
		MaxQueue: 8 * workers,
	})
	if err != nil {
		return nil, err
	}
	defer withRT.Close()
	withoutRT, withoutURL, err := startOverloadRuntime(workers, nil)
	if err != nil {
		return nil, err
	}
	defer withoutRT.Close()

	// Closed-loop capacity on the unprotected runtime; also warms both
	// (sandbox pools, connection setup, and the controller's EWMA seed).
	o.logf("overload: measuring capacity (spin %d iters, %d workers)", spinIters, workers)
	warm := loadgen.Options{URL: withURL + "/spin", Concurrency: workers, Requests: 4 * workers, Body: body}
	if _, err := loadgen.Run(warm); err != nil {
		return nil, fmt.Errorf("overload warmup: %w", err)
	}
	capRes, err := loadgen.Run(loadgen.Options{
		URL: withoutURL + "/spin", Concurrency: 2 * workers, Requests: capacityReqs, Body: body,
	})
	if err != nil {
		return nil, fmt.Errorf("overload capacity: %w", err)
	}
	capacity := capRes.ThroughputRPS
	o.logf("overload: capacity = %.0f rps", capacity)

	type pointJSON struct {
		Multiplier   float64 `json:"multiplier"`
		Admission    bool    `json:"admission"`
		OfferedRPS   float64 `json:"offered_rps"`
		Issued       int     `json:"issued"`
		GoodputRPS   float64 `json:"goodput_rps"`
		AdmittedP50  float64 `json:"admitted_p50_ms"`
		AdmittedP99  float64 `json:"admitted_p99_ms"`
		Rejected     int     `json:"rejected"`
		Errors       int     `json:"errors"`
		Dropped      int     `json:"dropped"`
		GoodputRatio float64 `json:"goodput_over_capacity"`
	}
	var points []pointJSON

	tbl := &Table{
		ID:      "overload",
		Title:   "Open-loop overload: goodput and admitted latency, +/- admission control",
		Headers: []string{"offered", "admission", "goodput rps", "goodput/cap", "p50 adm", "p99 adm", "shed", "errors"},
		Notes: []string{
			fmt.Sprintf("spin workload, %d iters/request, %d workers", spinIters, workers),
			fmt.Sprintf("closed-loop capacity %.0f rps; admission deadline %v", capacity, deadline),
			"shed = 429/503 responses (admission doing its job, not errors)",
		},
	}
	for _, mult := range []float64{1, 2, 4} {
		for _, adm := range []bool{false, true} {
			url := withoutURL
			if adm {
				url = withURL
			}
			res, err := loadgen.Run(loadgen.Options{
				URL:      url + "/spin",
				Body:     body,
				Rate:     mult * capacity,
				Duration: pointDur,
				Timeout:  10 * time.Second,
			})
			if err != nil {
				return nil, fmt.Errorf("overload %gx admission=%v: %w", mult, adm, err)
			}
			pt := pointJSON{
				Multiplier:  mult,
				Admission:   adm,
				OfferedRPS:  res.OfferedRPS,
				Issued:      res.Issued,
				GoodputRPS:  res.GoodputRPS,
				AdmittedP50: float64(res.Summary.P50) / 1e6,
				AdmittedP99: float64(res.Summary.P99) / 1e6,
				Rejected:    res.Rejected,
				Errors:      res.Errors,
				Dropped:     res.Dropped,
			}
			if capacity > 0 {
				pt.GoodputRatio = res.GoodputRPS / capacity
			}
			points = append(points, pt)
			onoff := "off"
			if adm {
				onoff = "on"
			}
			tbl.Rows = append(tbl.Rows, []string{
				fmt.Sprintf("%gx", mult),
				onoff,
				fmt.Sprintf("%.0f", pt.GoodputRPS),
				fmt.Sprintf("%.2f", pt.GoodputRatio),
				fmt.Sprintf("%.1fms", pt.AdmittedP50),
				fmt.Sprintf("%.1fms", pt.AdmittedP99),
				fmt.Sprintf("%d", pt.Rejected),
				fmt.Sprintf("%d", pt.Errors),
			})
			o.logf("overload: %gx admission=%s goodput=%.0f p99=%.1fms shed=%d",
				mult, onoff, pt.GoodputRPS, pt.AdmittedP99, pt.Rejected)
		}
	}

	if o.SnapshotPath != "" {
		snap := struct {
			App         string      `json:"app"`
			SpinIters   int         `json:"spin_iters"`
			Workers     int         `json:"workers"`
			Quick       bool        `json:"quick"`
			CapacityRPS float64     `json:"capacity_rps"`
			DeadlineMS  float64     `json:"deadline_ms"`
			Points      []pointJSON `json:"points"`
		}{"spin", spinIters, workers, o.Quick, capacity, float64(deadline) / 1e6, points}
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(o.SnapshotPath, append(data, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("overload snapshot: %w", err)
		}
		o.logf("overload: wrote %s", o.SnapshotPath)
	}
	return []*Table{tbl}, nil
}

func startOverloadRuntime(workers int, acfg *admission.Config) (*core.Runtime, string, error) {
	rt := core.New(core.Config{Workers: workers, Admission: acfg})
	app, _ := apps.Get("spin")
	cm, err := app.Compile(rt.EngineConfig())
	if err != nil {
		rt.Close()
		return nil, "", err
	}
	if _, err := rt.RegisterCompiled("spin", cm, "main", ""); err != nil {
		rt.Close()
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rt.Close()
		return nil, "", err
	}
	go rt.Serve(ln)
	return rt, "http://" + ln.Addr().String(), nil
}

package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"sledge/internal/engine"
	"sledge/internal/stats"
	"sledge/internal/workloads/polybench"
)

// RuntimeClass is one Wasm runtime configuration in the Fig. 5 comparison.
// The Sledge rows are the paper's own configurations; the *-class rows are
// the documented stand-ins for the external comparator runtimes (see
// DESIGN.md's substitution table): each maps the comparator's dominant
// mechanism difference onto explicit engine knobs.
type RuntimeClass struct {
	Name string
	Cfg  engine.Config
}

// Fig5Classes lists the runtime configurations in paper order.
var Fig5Classes = []RuntimeClass{
	{"Sledge+aWsm", engine.Config{Tier: engine.TierOptimized, Bounds: engine.BoundsGuard}},
	{"Sledge+aWsm-bounds-chk", engine.Config{Tier: engine.TierOptimized, Bounds: engine.BoundsSoftware}},
	{"Sledge+aWsm-mpx", engine.Config{Tier: engine.TierOptimized, Bounds: engine.BoundsMPX}},
	{"Sledge+aWsm-none", engine.Config{Tier: engine.TierOptimized, Bounds: engine.BoundsNone}},
	{"WAVM-class", engine.Config{Tier: engine.TierOptimized, Bounds: engine.BoundsSoftwareFused}},
	{"Node.js-class", engine.Config{Tier: engine.TierOptimized, Bounds: engine.BoundsSoftwareFused, PerInstrNops: 1, CallOverheadNops: 8}},
	{"Lucet-class", engine.Config{Tier: engine.TierNaive, Bounds: engine.BoundsSoftwareFused}},
	{"Wasmer-class", engine.Config{Tier: engine.TierNaive, Bounds: engine.BoundsSoftware, PerInstrNops: 3}},
}

// fig5Result holds per-kernel medians.
type fig5Result struct {
	kernels []string
	native  []time.Duration            // per kernel
	class   map[string][]time.Duration // class -> per kernel
}

func runFig5Table1(o Options) ([]*Table, error) {
	iters := 5
	if o.Quick {
		iters = 1
	}
	data := &fig5Result{class: make(map[string][]time.Duration)}

	filter := make(map[string]bool, len(o.KernelFilter))
	for _, name := range o.KernelFilter {
		filter[name] = true
	}
	for ki := range polybench.Kernels {
		k := &polybench.Kernels[ki]
		if len(filter) > 0 && !filter[k.Name] {
			continue
		}
		n := k.DefaultN
		if o.Quick {
			n = k.TestN
		}
		data.kernels = append(data.kernels, k.Name)

		want := k.Native(n)
		data.native = append(data.native, medianTime(iters, func() error {
			if got := k.Native(n); !closeEnough(got, want) {
				return fmt.Errorf("%s: native diverged", k.Name)
			}
			return nil
		}))

		for _, rc := range Fig5Classes {
			cm, err := k.Compile(n, rc.Cfg)
			if err != nil {
				return nil, fmt.Errorf("fig5: %s/%s: %w", k.Name, rc.Name, err)
			}
			var runErr error
			d := medianTime(iters, func() error {
				got, err := polybench.RunWasm(cm, n)
				if err != nil {
					return err
				}
				if !closeEnough(got, want) {
					return fmt.Errorf("%s/%s: checksum %v != native %v", k.Name, rc.Name, got, want)
				}
				return nil
			}, &runErr)
			if runErr != nil {
				return nil, fmt.Errorf("fig5: %w", runErr)
			}
			data.class[rc.Name] = append(data.class[rc.Name], d)
		}
		o.logf("fig5: %s done (n=%d)", k.Name, n)
	}

	fig5 := &Table{
		ID:    "fig5",
		Title: "PolyBench/C time normalized to native, per Wasm runtime configuration",
		Notes: []string{
			"native = mirrored Go implementation compiled by gc (the clang -O3 analog)",
			"absolute ratios are interpreter-scale; the paper-comparable quantity is the ordering and the config-vs-config ratios (Table 1)",
		},
	}
	fig5.Headers = append([]string{"benchmark"}, classNames()...)
	for i, name := range data.kernels {
		row := []string{name}
		for _, rc := range Fig5Classes {
			ratio := float64(data.class[rc.Name][i]) / float64(data.native[i])
			row = append(row, fmt.Sprintf("%.1fx", ratio))
		}
		fig5.Rows = append(fig5.Rows, row)
	}

	table1 := &Table{
		ID:    "table1",
		Title: "Slowdown summary per runtime (AM/GM/SD), two normalizations",
		Headers: []string{"runtime", "vs-native AM", "vs-native GM",
			"vs-unchecked AM%", "vs-unchecked GM%", "vs-unchecked SD"},
		Notes: []string{
			"vs-unchecked normalizes against Sledge+aWsm-none (no bounds checks), isolating sandboxing overhead as the paper's % slowdowns do",
			"AArch64/Raspberry Pi columns omitted: no ARM hardware in this reproduction (see EXPERIMENTS.md)",
		},
	}
	baseline := data.class["Sledge+aWsm-none"]
	for _, rc := range Fig5Classes {
		var vsNative, vsUnchecked []float64
		for i := range data.kernels {
			vsNative = append(vsNative, float64(data.class[rc.Name][i])/float64(data.native[i]))
			vsUnchecked = append(vsUnchecked, float64(data.class[rc.Name][i])/float64(baseline[i]))
		}
		pct := func(xs []float64, f func([]float64) float64) float64 { return (f(xs) - 1) * 100 }
		table1.Rows = append(table1.Rows, []string{
			rc.Name,
			fmt.Sprintf("%.1fx", stats.Mean(vsNative)),
			fmt.Sprintf("%.1fx", stats.GeoMean(vsNative)),
			fmt.Sprintf("%+.1f%%", pct(vsUnchecked, stats.Mean)),
			fmt.Sprintf("%+.1f%%", pct(vsUnchecked, stats.GeoMean)),
			fmt.Sprintf("%.2f", stats.StdDev(vsUnchecked)),
		})
	}
	return []*Table{fig5, table1}, nil
}

func classNames() []string {
	out := make([]string, len(Fig5Classes))
	for i, rc := range Fig5Classes {
		out[i] = rc.Name
	}
	return out
}

// medianTime returns the median wall time of fn over iters runs. If errOut
// is provided, the first error is stored there and timing stops early.
func medianTime(iters int, fn func() error, errOut ...*error) time.Duration {
	times := make([]time.Duration, 0, iters)
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		err := fn()
		d := time.Since(t0)
		if err != nil {
			if len(errOut) > 0 {
				*errOut[0] = err
			}
			return d
		}
		times = append(times, d)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2]
}

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

package experiments

import (
	"bytes"
	"fmt"
	"os"
	"sort"
	"time"

	"sledge/internal/abi"
	"sledge/internal/engine"
	"sledge/internal/nuclio"
	"sledge/internal/sandbox"
	"sledge/internal/stats"
	"sledge/internal/wcc"
	"sledge/internal/workloads/apps"
)

// RunTable2 reproduces Table 2: per-application execution time, native vs
// Sledge sandbox (avg, p99, and the normalized slowdown).
func RunTable2(o Options) ([]*Table, error) {
	iters := 200
	if o.Quick {
		iters = 10
	}
	names := []string{"gps-ekf", "gocr", "cifar10", "resize", "lpd"}
	tbl := &Table{
		ID:    "table2",
		Title: "Execution time of real-world functions: Sledge sandbox vs native",
		Headers: []string{"application", "native avg", "native p99",
			"sledge avg", "sledge p99", "avg norm", "p99 norm"},
		Notes: []string{
			fmt.Sprintf("%d iterations per cell; sledge time includes sandbox instantiation and teardown, as in the paper's runtime path", iters),
		},
	}
	for _, name := range names {
		app, ok := apps.Get(name)
		if !ok {
			return nil, fmt.Errorf("table2: unknown app %s", name)
		}
		req := app.GenRequest()
		want := app.Native(req)

		nativeLat := make([]time.Duration, 0, iters)
		for i := 0; i < iters; i++ {
			t0 := time.Now()
			got := app.Native(req)
			nativeLat = append(nativeLat, time.Since(t0))
			if !bytes.Equal(got, want) {
				return nil, fmt.Errorf("table2: %s native nondeterministic", name)
			}
		}
		cm, err := app.Compile(engine.Config{})
		if err != nil {
			return nil, err
		}
		wasmLat := make([]time.Duration, 0, iters)
		for i := 0; i < iters; i++ {
			t0 := time.Now()
			got, err := apps.RunWasm(cm, req)
			wasmLat = append(wasmLat, time.Since(t0))
			if err != nil {
				return nil, fmt.Errorf("table2: %s: %w", name, err)
			}
			if !bytes.Equal(got, want) {
				return nil, fmt.Errorf("table2: %s wasm != native", name)
			}
		}
		ns := stats.Summarize(nativeLat)
		ws := stats.Summarize(wasmLat)
		tbl.Rows = append(tbl.Rows, []string{
			name,
			ns.Mean.String(), ns.P99.String(),
			ws.Mean.String(), ws.P99.String(),
			fmt.Sprintf("%.2fx", float64(ws.Mean)/float64(ns.Mean)),
			fmt.Sprintf("%.2fx", float64(ws.P99)/float64(ns.P99)),
		})
		o.logf("table2: %s native=%v sledge=%v", name, ns.Mean, ws.Mean)
	}
	return []*Table{tbl}, nil
}

// RunTable3 reproduces Table 3: churn — fork+exec+wait of a native process
// vs Sledge sandbox creation and teardown, for the GPS-EKF module.
func RunTable3(o Options) ([]*Table, error) {
	iters := 2000
	forkIters := 300
	if o.Quick {
		iters = 200
		forkIters = 20
	}
	app, _ := apps.Get("gps-ekf")
	cm, err := app.Compile(engine.Config{})
	if err != nil {
		return nil, err
	}
	req := app.GenRequest()

	sandboxLat := make([]time.Duration, 0, iters)
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		sb, err := sandbox.New(cm, req, sandbox.Options{})
		if err != nil {
			return nil, err
		}
		sb.Fail(nil) // teardown without executing, like the churn benchmark
		sandboxLat = append(sandboxLat, time.Since(t0))
	}

	nuc, err := nuclio.New(nuclio.Config{MaxWorkers: 1})
	if err != nil {
		return nil, err
	}
	forkLat := make([]time.Duration, 0, forkIters)
	for i := 0; i < forkIters; i++ {
		t0 := time.Now()
		if err := nuc.SpawnNoop(); err != nil {
			return nil, fmt.Errorf("table3: %w", err)
		}
		forkLat = append(forkLat, time.Since(t0))
	}

	ss := stats.Summarize(sandboxLat)
	fs := stats.Summarize(forkLat)
	tbl := &Table{
		ID:      "table3",
		Title:   "Churn: function instantiation cost (GPS-EKF module)",
		Headers: []string{"mechanism", "avg", "p99", "iterations"},
		Rows: [][]string{
			{"fork + exec + wait (native process)", fs.Mean.String(), fs.P99.String(), fmt.Sprint(fs.Count)},
			{"Sledge sandbox create + teardown", ss.Mean.String(), ss.P99.String(), fmt.Sprint(ss.Count)},
		},
		Notes: []string{
			fmt.Sprintf("sandbox startup is %.0fx cheaper than process creation on this machine",
				float64(fs.Mean)/float64(ss.Mean)),
		},
	}
	return []*Table{tbl}, nil
}

// RunMemFootprint reproduces the §5.1 memory-footprint discussion: runtime
// binary size and per-module artifact sizes.
func RunMemFootprint(o Options) ([]*Table, error) {
	tbl := &Table{
		ID:      "memfoot",
		Title:   "Memory footprint: runtime binary and per-module artifacts",
		Headers: []string{"artifact", "wasm binary", "compiled object", "min linear memory"},
		Notes: []string{
			"the paper reports a 359 KB runtime binary and 108-112 KB AoT shared objects vs 10s-100s of MB for container images",
		},
	}
	if exe, err := os.Executable(); err == nil {
		if fi, err := os.Stat(exe); err == nil {
			tbl.Notes = append(tbl.Notes,
				fmt.Sprintf("this process binary (runtime + all workloads + test harness): %.1f MB", float64(fi.Size())/(1<<20)))
		}
	}
	names := apps.Names()
	sort.Strings(names)
	for _, name := range names {
		app, _ := apps.Get(name)
		res, err := wcc.Compile(app.Source, wcc.Options{HeapBytes: app.HeapBytes, Data: app.Data})
		if err != nil {
			return nil, err
		}
		cm, err := engine.CompileBinary(res.Binary, abi.Registry(), engine.Config{})
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, []string{
			name,
			fmt.Sprintf("%d B", len(res.Binary)),
			fmt.Sprintf("%d B", cm.Stats().ObjectBytes),
			fmt.Sprintf("%d KiB", cm.MinMemoryBytes()/1024),
		})
	}
	return []*Table{tbl}, nil
}

package experiments

import (
	"bytes"
	"testing"
)

// TestTierupSmoke runs the adaptive-tiering benchmark end-to-end at quick
// sizes: both halves must complete, every response must match (the zipf
// driver verifies each reply against the pre-swap answer internally), and
// the qualitative ordering must hold — the cheap rungs register strictly
// faster than the static full pipeline. The acceptance-grade numbers
// (>= 5x registration, >= 0.95 steady ratio) come from `make bench-tierup`
// at full sizes.
func TestTierupSmoke(t *testing.T) {
	var snap tierupSnapshot
	tables, err := runTierup(Options{Quick: true}, &snap)
	if err != nil {
		t.Fatalf("tierup: %v", err)
	}
	if len(tables) != 2 {
		t.Fatalf("tierup produced %d tables, want 2", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s has no rows", tbl.ID)
		}
		var buf bytes.Buffer
		tbl.Render(&buf)
		t.Logf("\n%s", buf.String())
	}
	if len(snap.Storm.Modes) != 3 {
		t.Fatalf("storm ran %d modes, want 3", len(snap.Storm.Modes))
	}
	if snap.Storm.SpeedupCheapVsFull <= 1 {
		t.Errorf("cheap-rung registration not faster than static-full: %.2fx", snap.Storm.SpeedupCheapVsFull)
	}
	if snap.Storm.SpeedupNaiveVsFull <= 1 {
		t.Errorf("naive-rung registration not faster than static-full: %.2fx", snap.Storm.SpeedupNaiveVsFull)
	}
	if len(snap.Zipf.Modes) != 4 {
		t.Fatalf("zipf ran %d modes, want 4", len(snap.Zipf.Modes))
	}
	for _, m := range snap.Zipf.Modes {
		if m.Requests == 0 {
			t.Errorf("zipf %s completed no requests", m.Mode)
		}
		if m.Mode == "adaptive" && m.Promotions == 0 {
			t.Errorf("adaptive zipf run promoted nothing")
		}
	}
}

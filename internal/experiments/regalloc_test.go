package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRegallocAblationSmoke exercises the full bench-regalloc path on a
// kernel subset at quick sizes: both IR forms must run every workload to the
// correct checksum, the snapshot JSON must round-trip, and the register form
// must not be catastrophically slower than the stack form. The real
// acceptance number (PolyBench geomean >= 1.15x at full sizes) lives in
// BENCH_regalloc.json, produced by `make bench-regalloc`; quick sizes are
// too noisy to gate on it.
func TestRegallocAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("regalloc ablation smoke skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "regalloc.json")
	tables, err := RunRegallocAblation(Options{
		Quick:        true,
		KernelFilter: []string{"gemm", "jacobi-2d", "trisolv", "atax"},
		SnapshotPath: path,
	})
	if err != nil {
		t.Fatalf("regalloc ablation: %v", err)
	}
	if len(tables) != 1 || len(tables[0].Rows) == 0 {
		t.Fatalf("no results: %+v", tables)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	var snap regallocSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot decode: %v", err)
	}
	if len(snap.Polybench) != 4 || len(snap.Apps) == 0 {
		t.Fatalf("snapshot coverage: %d kernels, %d apps", len(snap.Polybench), len(snap.Apps))
	}
	if !snap.GemmStats.Enabled || snap.GemmStats.ThreeAddressFused == 0 {
		t.Errorf("gemm did not compile to register form: %+v", snap.GemmStats)
	}
	if snap.GemmStats.Spills != 0 {
		t.Errorf("gemm reported %d spills; the slab register file never spills", snap.GemmStats.Spills)
	}
	// Loose sanity floor only: quick-size kernels finish in microseconds,
	// so scheduling noise swamps the real ratio.
	if snap.PolybenchGeomean < 0.75 {
		t.Errorf("register form catastrophically slower: geomean %.3f", snap.PolybenchGeomean)
	}
	t.Logf("quick geomean: polybench %.3fx, apps %.3fx", snap.PolybenchGeomean, snap.AppsGeomean)
}

package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sledge/internal/core"
	"sledge/internal/wcc"
	"sledge/internal/workloads/apps"
)

// The adaptive-tiering benchmark has two halves:
//
//  1. Registration storm — register thousands of modules (the paper's
//     multi-tenant edge fleet coming up after a deploy or node restart) and
//     compare the static full-tier pipeline against the tier ladder's cheap
//     rungs. This is the cold-register cliff adaptive tiering exists to
//     remove.
//  2. Zipf time-to-peak — drive a Zipf-distributed closed loop over a fleet
//     of compute-bound modules and watch throughput converge as the
//     promotion controller recompiles the hot set in the background. The
//     steady-state ratio against the static-full baseline is the acceptance
//     number: adaptive must reach >= 95% of static-full.
//
// `make bench-tierup` regenerates BENCH_tierup.json from this file.

// tierupStormApps is the registration-storm corpus: the paper's real-world
// functions, compiled to wasm once and then registered round-robin so the
// storm decodes/validates/compiles realistic module bodies, not toys.
var tierupStormApps = []string{"gps-ekf", "gocr", "resize", "lpd"}

// tierupComputeSrc is the Zipf workload: a table-fill plus data-dependent
// scan, so memory accesses (where the full rung's lowering and analysis
// pay) dominate the service time, with a response byte derived from the
// input so every reply proves which code produced it.
const tierupComputeSrc = `
static u8 tbl[4096];
static u8 buf[8];
export i32 main() {
	sys_read(buf, 8);
	i32 seed = buf[0] + 1;
	for (i32 i = 0; i < 4096; i = i + 1) {
		tbl[i] = seed + i * 7;
	}
	i32 s = 0;
	for (i32 r = 0; r < 2; r = r + 1) {
		for (i32 i = 0; i < 4096; i = i + 1) {
			s = s + tbl[(i + s) & 4095];
		}
	}
	buf[0] = s;
	sys_write(buf, 1);
	return 0;
}
`

type tierupStormEntry struct {
	Mode        string `json:"mode"`
	Modules     int    `json:"modules"`
	TotalNS     int64  `json:"total_ns"`
	PerModuleNS int64  `json:"per_module_ns"`
	// P50NS/P90NS are per-registration latency percentiles. The median is
	// the acceptance statistic: at fleet scale the mean absorbs collector
	// assist bursts whose size tracks the retained-module heap, a cost
	// every rung pays alike, while the median isolates the registration
	// path the tiers actually differ on.
	P50NS  int64   `json:"p50_ns"`
	P90NS  int64   `json:"p90_ns"`
	VsFull float64 `json:"speedup_vs_full_p50"`
}

type tierupStormSection struct {
	Modules            int                `json:"modules"`
	Corpus             []string           `json:"corpus"`
	Modes              []tierupStormEntry `json:"modes"`
	SpeedupCheapVsFull float64            `json:"speedup_cheap_vs_full"`
	SpeedupNaiveVsFull float64            `json:"speedup_naive_vs_full"`
}

type tierupZipfEntry struct {
	Mode         string    `json:"mode"`
	Requests     int       `json:"requests"`
	SteadyRPS    float64   `json:"steady_rps"`
	TimeToPeakMS int64     `json:"time_to_peak_ms"` // -1: never reached 95% of static-full steady
	Promotions   uint64    `json:"promotions"`
	WindowRPS    []float64 `json:"window_rps"`
}

type tierupZipfSection struct {
	Modules                   int               `json:"modules"`
	DurationMS                int64             `json:"duration_ms"`
	WindowMS                  int64             `json:"window_ms"`
	Workers                   int               `json:"workers"`
	ZipfS                     float64           `json:"zipf_s"`
	Modes                     []tierupZipfEntry `json:"modes"`
	SteadyRatioAdaptiveVsFull float64           `json:"steady_ratio_adaptive_vs_full"`
}

// tierupSnapshot is the machine-readable BENCH_tierup.json payload.
type tierupSnapshot struct {
	Description string             `json:"description"`
	Go          string             `json:"go"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Quick       bool               `json:"quick"`
	Storm       tierupStormSection `json:"registration_storm"`
	Zipf        tierupZipfSection  `json:"zipf_time_to_peak"`
	Acceptance  string             `json:"acceptance"`
}

// tierupStormModes pairs each storm mode with its runtime tiering config.
// Thresholds are effectively infinite and the scan interval long so the
// promotion controller stays quiet: the storm isolates registration cost.
func tierupStormModes() []struct {
	Name string
	Cfg  core.TieringConfig
} {
	quiet := core.TieringConfig{
		Mode:           core.TierAdaptive,
		HotInvocations: 1 << 60,
		HotGas:         1 << 62,
		Interval:       time.Minute,
	}
	naive := quiet
	naive.NaiveStart = true
	return []struct {
		Name string
		Cfg  core.TieringConfig
	}{
		{"static-full", core.TieringConfig{Mode: core.TierStatic}},
		{"adaptive-cheap", quiet},
		{"adaptive-naive", naive},
	}
}

// RunTierup measures adaptive tiering: the registration storm across the
// tier ladder's rungs and the Zipf closed loop's convergence to static-full
// throughput. With SnapshotPath set it writes BENCH_tierup.json.
func RunTierup(o Options) ([]*Table, error) {
	var snap tierupSnapshot
	return runTierup(o, &snap)
}

func runTierup(o Options, snap *tierupSnapshot) ([]*Table, error) {
	stormN := 10000
	zipfModules := 48
	zipfDuration := 3 * time.Second
	zipfWindow := 100 * time.Millisecond
	if o.Quick {
		stormN = 400
		zipfModules = 8
		zipfDuration = 500 * time.Millisecond
		zipfWindow = 50 * time.Millisecond
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 8 {
		workers = 8
	}

	snap.Description = "Adaptive tiering: cheap-rung registration storm vs the static full pipeline, and Zipf closed-loop throughput convergence as the promotion controller recompiles the hot set in the background. make bench-tierup"
	snap.Go = runtime.Version()
	snap.GOMAXPROCS = runtime.GOMAXPROCS(0)
	snap.Quick = o.Quick
	snap.Acceptance = "registration storm: cheap rung >= 5x faster per module than static-full; zipf: adaptive steady-state throughput >= 95% of static-full"

	stormTbl, err := runTierupStorm(o, stormN, &snap.Storm)
	if err != nil {
		return nil, err
	}
	zipfTbl, err := runTierupZipfSweep(o, zipfModules, workers, zipfDuration, zipfWindow, &snap.Zipf)
	if err != nil {
		return nil, err
	}

	if o.SnapshotPath != "" {
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(o.SnapshotPath, append(buf, '\n'), 0o644); err != nil {
			return nil, err
		}
		o.logf("tierup: wrote %s", o.SnapshotPath)
	}
	return []*Table{stormTbl, zipfTbl}, nil
}

// runTierupStorm registers stormN modules (round-robin over the compiled
// app corpus) into a fresh runtime per mode and times the registration
// loop. A warmup round per mode plus an explicit GC between modes keeps the
// collector's pacing from crediting one mode with another's debt.
func runTierupStorm(o Options, stormN int, out *tierupStormSection) (*Table, error) {
	type appBin struct {
		name  string
		bin   []byte
		req   []byte
		want  []byte
		heavy bool
	}
	corpus := make([]appBin, 0, len(tierupStormApps))
	for _, name := range tierupStormApps {
		app, ok := apps.Get(name)
		if !ok {
			return nil, fmt.Errorf("tierup: unknown app %s", name)
		}
		res, err := wcc.Compile(app.Source, wcc.Options{HeapBytes: app.HeapBytes, Data: app.Data})
		if err != nil {
			return nil, fmt.Errorf("tierup: compile %s: %w", name, err)
		}
		req := app.GenRequest()
		corpus = append(corpus, appBin{name: name, bin: res.Binary, req: req, want: app.Native(req)})
	}
	out.Modules = stormN
	out.Corpus = append(out.Corpus, tierupStormApps...)

	runStorm := func(cfg core.TieringConfig, n int, lat []time.Duration) (time.Duration, error) {
		rt := core.New(core.Config{Workers: 2, Tiering: &cfg})
		defer rt.Close()
		start := time.Now()
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("m%06d", i)
			t0 := time.Now()
			if _, err := rt.RegisterWasm(name, corpus[i%len(corpus)].bin, "main"); err != nil {
				return 0, fmt.Errorf("tierup storm: register %s: %w", name, err)
			}
			if lat != nil {
				lat[i] = time.Since(t0)
			}
		}
		elapsed := time.Since(start)
		if lat != nil {
			// One request through each distinct app: whatever rung served
			// the storm must produce the native answer.
			for i, ab := range corpus {
				got, err := rt.Invoke(fmt.Sprintf("m%06d", i), ab.req)
				if err != nil {
					return 0, fmt.Errorf("tierup storm: invoke %s: %w", ab.name, err)
				}
				if !bytes.Equal(got, ab.want) {
					return 0, fmt.Errorf("tierup storm: %s response != native", ab.name)
				}
			}
		}
		return elapsed, nil
	}

	tbl := &Table{
		ID:      "tierup-storm",
		Title:   fmt.Sprintf("Registration storm: %d modules (corpus %v)", stormN, tierupStormApps),
		Headers: []string{"mode", "total", "mean", "p50", "p90", "vs static-full (p50)"},
		Notes: []string{
			"static-full compiles analysis+regalloc at registration (the pre-tiering behaviour);",
			"adaptive-cheap compiles the optimized tier with analysis and regalloc off; adaptive-naive only decodes+validates;",
			"the p50 is the acceptance statistic: the mean absorbs GC assist bursts sized by the retained fleet, which every rung pays alike",
		},
	}
	var fullP50 int64
	lat := make([]time.Duration, stormN)
	for _, mode := range tierupStormModes() {
		// Warmup: touch the same code paths at a tenth of the size, then
		// collect, so measured runs start from comparable heaps.
		if _, err := runStorm(mode.Cfg, stormN/10+1, nil); err != nil {
			return nil, err
		}
		runtime.GC()
		elapsed, err := runStorm(mode.Cfg, stormN, lat)
		if err != nil {
			return nil, err
		}
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		entry := tierupStormEntry{
			Mode:        mode.Name,
			Modules:     stormN,
			TotalNS:     elapsed.Nanoseconds(),
			PerModuleNS: elapsed.Nanoseconds() / int64(stormN),
			P50NS:       lat[stormN/2].Nanoseconds(),
			P90NS:       lat[stormN*9/10].Nanoseconds(),
		}
		if mode.Name == "static-full" {
			fullP50 = entry.P50NS
		}
		if fullP50 > 0 && entry.P50NS > 0 {
			entry.VsFull = float64(fullP50) / float64(entry.P50NS)
		}
		switch mode.Name {
		case "adaptive-cheap":
			out.SpeedupCheapVsFull = entry.VsFull
		case "adaptive-naive":
			out.SpeedupNaiveVsFull = entry.VsFull
		}
		out.Modes = append(out.Modes, entry)
		tbl.Rows = append(tbl.Rows, []string{
			entry.Mode, time.Duration(entry.TotalNS).String(),
			time.Duration(entry.PerModuleNS).String(),
			time.Duration(entry.P50NS).String(),
			time.Duration(entry.P90NS).String(),
			fmt.Sprintf("%.2fx", entry.VsFull),
		})
		o.logf("tierup storm: %s %v total, mean %v, p50 %v", mode.Name, elapsed,
			time.Duration(entry.PerModuleNS), time.Duration(entry.P50NS))
	}
	return tbl, nil
}

// runTierupZipfSweep drives the Zipf closed loop under four configurations:
// the static-full baseline, the two never-promote ablations, and adaptive
// tiering starting from the naive rung (the hardest convergence case: the
// controller must recompile the hot set before throughput can approach the
// baseline).
func runTierupZipfSweep(o Options, modules, workers int, duration, window time.Duration, out *tierupZipfSection) (*Table, error) {
	res, err := wcc.Compile(tierupComputeSrc, wcc.Options{})
	if err != nil {
		return nil, fmt.Errorf("tierup zipf: compile workload: %w", err)
	}
	bin := res.Binary

	const zipfS = 1.3
	out.Modules = modules
	out.DurationMS = duration.Milliseconds()
	out.WindowMS = window.Milliseconds()
	out.Workers = workers
	out.ZipfS = zipfS

	adaptive := core.TieringConfig{
		Mode:           core.TierAdaptive,
		NaiveStart:     true,
		HotInvocations: 8,
		HotGas:         1 << 20,
		Interval:       5 * time.Millisecond,
		MaxConcurrent:  4,
	}
	modes := []struct {
		Name string
		Cfg  core.TieringConfig
	}{
		{"static-full", core.TieringConfig{Mode: core.TierStatic}},
		{"cheap-only", core.TieringConfig{Mode: core.TierCheapOnly}},
		{"naive-only", core.TieringConfig{Mode: core.TierCheapOnly, NaiveStart: true}},
		{"adaptive", adaptive},
	}

	tbl := &Table{
		ID:    "tierup-zipf",
		Title: fmt.Sprintf("Zipf(s=%.1f) closed loop: %d modules, %d workers, %v", zipfS, modules, workers, duration),
		Headers: []string{"mode", "requests", "steady req/s", "vs static-full",
			"time to 95% of full", "promotions"},
		Notes: []string{
			"steady req/s is the mean over the run's last third;",
			"adaptive starts every module on the naive rung and recompiles the Zipf-hot set in the background",
		},
	}
	for _, mode := range modes {
		entry, err := runTierupZipfMode(mode.Cfg, bin, modules, workers, duration, window, zipfS)
		if err != nil {
			return nil, fmt.Errorf("tierup zipf %s: %w", mode.Name, err)
		}
		entry.Mode = mode.Name
		out.Modes = append(out.Modes, entry)
		o.logf("tierup zipf: %s steady=%.0f req/s promotions=%d", mode.Name, entry.SteadyRPS, entry.Promotions)
	}
	// Time-to-peak and the acceptance ratio are computed against the
	// static-full baseline after every mode has run, so mode ordering does
	// not bias them.
	var fullSteady float64
	for _, e := range out.Modes {
		if e.Mode == "static-full" {
			fullSteady = e.SteadyRPS
		}
	}
	for i := range out.Modes {
		e := &out.Modes[i]
		for wi, rps := range e.WindowRPS {
			if fullSteady > 0 && rps >= 0.95*fullSteady {
				e.TimeToPeakMS = int64(wi+1) * window.Milliseconds()
				break
			}
		}
		if e.Mode == "adaptive" && fullSteady > 0 {
			out.SteadyRatioAdaptiveVsFull = e.SteadyRPS / fullSteady
		}
		ratio := "-"
		if fullSteady > 0 {
			ratio = fmt.Sprintf("%.2f", e.SteadyRPS/fullSteady)
		}
		peak := "never"
		if e.TimeToPeakMS >= 0 {
			peak = fmt.Sprintf("%dms", e.TimeToPeakMS)
		}
		tbl.Rows = append(tbl.Rows, []string{
			e.Mode, fmt.Sprint(e.Requests),
			fmt.Sprintf("%.0f", e.SteadyRPS), ratio, peak,
			fmt.Sprint(e.Promotions),
		})
	}
	return tbl, nil
}

// runTierupZipfMode runs one configuration of the Zipf closed loop. Every
// response is checked against the module's warmup response, so a promotion
// that changed observable behaviour fails the benchmark, not just a test.
func runTierupZipfMode(cfg core.TieringConfig, bin []byte, modules, workers int,
	duration, window time.Duration, zipfS float64) (tierupZipfEntry, error) {
	entry := tierupZipfEntry{TimeToPeakMS: -1}
	rt := core.New(core.Config{Workers: workers, Tiering: &cfg})
	defer rt.Close()

	names := make([]string, modules)
	payloads := make([][]byte, modules)
	want := make([][]byte, modules)
	for i := range names {
		names[i] = fmt.Sprintf("z%03d", i)
		if _, err := rt.RegisterWasm(names[i], bin, "main"); err != nil {
			return entry, err
		}
		payloads[i] = []byte{byte(i), byte(i >> 8), 0, 0, 0, 0, 0, 0}
		got, err := rt.Invoke(names[i], payloads[i])
		if err != nil {
			return entry, err
		}
		want[i] = append([]byte(nil), got...)
	}

	nWindows := int(duration / window)
	windows := make([]atomic.Int64, nWindows+1)
	var total atomic.Int64
	var firstErr atomic.Pointer[error]
	start := time.Now()
	deadline := start.Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			zipf := rand.NewZipf(rng, zipfS, 1, uint64(modules-1))
			for time.Now().Before(deadline) {
				i := int(zipf.Uint64())
				got, err := rt.Invoke(names[i], payloads[i])
				if err == nil && !bytes.Equal(got, want[i]) {
					err = fmt.Errorf("module %s: response diverged after tier swap", names[i])
				}
				if err != nil {
					firstErr.CompareAndSwap(nil, &err)
					return
				}
				if wi := int(time.Since(start) / window); wi < len(windows) {
					windows[wi].Add(1)
				}
				total.Add(1)
			}
		}(int64(7919 * (w + 1)))
	}
	wg.Wait()
	if ep := firstErr.Load(); ep != nil {
		return entry, *ep
	}

	entry.Requests = int(total.Load())
	entry.WindowRPS = make([]float64, nWindows)
	for i := 0; i < nWindows; i++ {
		entry.WindowRPS[i] = float64(windows[i].Load()) / window.Seconds()
	}
	steadyFrom := nWindows * 2 / 3
	var sum float64
	for _, rps := range entry.WindowRPS[steadyFrom:] {
		sum += rps
	}
	if n := nWindows - steadyFrom; n > 0 {
		entry.SteadyRPS = sum / float64(n)
	}
	if snap, ok := rt.TieringStats(); ok {
		entry.Promotions = snap.Promotions
	}
	return entry, nil
}

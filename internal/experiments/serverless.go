package experiments

import (
	"fmt"
	"net"
	"runtime"
	"time"

	"sledge/internal/core"
	"sledge/internal/loadgen"
	"sledge/internal/nuclio"
	"sledge/internal/workloads/apps"
)

// serverPair runs the Sledge runtime and the Nuclio-style baseline side by
// side on loopback listeners, both serving the same registered functions.
type serverPair struct {
	sledge    *core.Runtime
	nuclioRT  *nuclio.Runtime
	sledgeURL string
	nuclioURL string
}

func startServers(o Options, appNames []string) (*serverPair, error) {
	workers := o.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rt := core.New(core.Config{Workers: workers})
	for _, name := range appNames {
		app, ok := apps.Get(name)
		if !ok {
			rt.Close()
			return nil, fmt.Errorf("experiments: unknown app %s", name)
		}
		cm, err := app.Compile(rt.EngineConfig())
		if err != nil {
			rt.Close()
			return nil, err
		}
		if _, err := rt.RegisterCompiled(name, cm, "main", ""); err != nil {
			rt.Close()
			return nil, err
		}
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rt.Close()
		return nil, err
	}
	go rt.Serve(ln1)

	nuc, err := nuclio.New(nuclio.Config{MaxWorkers: 16})
	if err != nil {
		rt.Close()
		return nil, err
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rt.Close()
		return nil, err
	}
	go nuc.Serve(ln2)

	return &serverPair{
		sledge:    rt,
		nuclioRT:  nuc,
		sledgeURL: "http://" + ln1.Addr().String(),
		nuclioURL: "http://" + ln2.Addr().String(),
	}, nil
}

func (sp *serverPair) close() {
	sp.sledge.Close()
	sp.nuclioRT.Close()
}

// measurePoint runs one load point against both systems.
type point struct {
	sledgeRPS, nuclioRPS   float64
	sledgeMean, nuclioMean time.Duration
	sledgeP99, nuclioP99   time.Duration
	errs                   int
}

func (sp *serverPair) measure(app string, conc, nSledge, nNuclio int, body []byte) (point, error) {
	var pt point
	// Warm both systems: connection setup, allocator, and scheduler
	// warm-up otherwise skew the first measured point.
	warm := conc / 4
	if warm < 4 {
		warm = 4
	}
	if _, err := loadgen.Run(loadgen.Options{
		URL: sp.sledgeURL + "/" + app, Concurrency: 4, Requests: warm, Body: body,
	}); err != nil {
		return pt, fmt.Errorf("sledge warmup %s: %w", app, err)
	}
	if _, err := loadgen.Run(loadgen.Options{
		URL: sp.nuclioURL + "/" + app, Concurrency: 4, Requests: 4, Body: body,
	}); err != nil {
		return pt, fmt.Errorf("nuclio warmup %s: %w", app, err)
	}
	res, err := loadgen.Run(loadgen.Options{
		URL: sp.sledgeURL + "/" + app, Concurrency: conc, Requests: nSledge, Body: body,
	})
	if err != nil {
		return pt, fmt.Errorf("sledge %s c=%d: %w", app, conc, err)
	}
	pt.sledgeRPS = res.ThroughputRPS
	pt.sledgeMean = res.Summary.Mean
	pt.sledgeP99 = res.Summary.P99
	pt.errs += res.Errors

	res, err = loadgen.Run(loadgen.Options{
		URL: sp.nuclioURL + "/" + app, Concurrency: conc, Requests: nNuclio, Body: body,
	})
	if err != nil {
		return pt, fmt.Errorf("nuclio %s c=%d: %w", app, conc, err)
	}
	pt.nuclioRPS = res.ThroughputRPS
	pt.nuclioMean = res.Summary.Mean
	pt.nuclioP99 = res.Summary.P99
	pt.errs += res.Errors
	return pt, nil
}

func pointRow(label string, pt point) []string {
	ratioRPS := 0.0
	if pt.nuclioRPS > 0 {
		ratioRPS = pt.sledgeRPS / pt.nuclioRPS
	}
	ratioLat := 0.0
	if pt.sledgeMean > 0 {
		ratioLat = float64(pt.nuclioMean) / float64(pt.sledgeMean)
	}
	return []string{
		label,
		fmt.Sprintf("%.0f", pt.sledgeRPS),
		ms(pt.sledgeMean), ms(pt.sledgeP99),
		fmt.Sprintf("%.0f", pt.nuclioRPS),
		ms(pt.nuclioMean), ms(pt.nuclioP99),
		fmt.Sprintf("%.2fx", ratioRPS),
		fmt.Sprintf("%.2fx", ratioLat),
	}
}

var pointHeaders = []string{"", "sledge req/s", "sledge mean", "sledge p99",
	"nuclio req/s", "nuclio mean", "nuclio p99", "tput ratio", "lat ratio"}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}

// RunFig6 reproduces Figure 6: ping throughput and latency with varying
// concurrency, Sledge vs the process-model baseline.
func RunFig6(o Options) ([]*Table, error) {
	concs := []int{1, 5, 10, 20, 40, 60, 80, 100}
	nSledge, nNuclio := 2000, 400
	if o.Quick {
		concs = []int{1, 4}
		nSledge, nNuclio = 80, 16
	}
	sp, err := startServers(o, []string{"ping"})
	if err != nil {
		return nil, err
	}
	defer sp.close()

	tbl := &Table{
		ID:      "fig6",
		Title:   "Ping function: throughput and latency vs concurrency",
		Headers: append([]string{"concurrency"}, pointHeaders[1:]...),
		Notes: []string{
			fmt.Sprintf("requests per point: sledge %d, nuclio %d; single-node loopback", nSledge, nNuclio),
		},
	}
	for _, c := range concs {
		pt, err := sp.measure("ping", c, nSledge, nNuclio, nil)
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, pointRow(fmt.Sprintf("%d", c), pt))
		o.logf("fig6: c=%d sledge=%.0frps nuclio=%.0frps", c, pt.sledgeRPS, pt.nuclioRPS)
	}
	return []*Table{tbl}, nil
}

// RunFig7 reproduces Figure 7: the network-transfer function with varying
// payload sizes at 100 concurrent connections.
func RunFig7(o Options) ([]*Table, error) {
	sizes := []int{1 << 10, 10 << 10, 100 << 10, 1 << 20}
	labels := []string{"1KB", "10KB", "100KB", "1MB"}
	conc, nSledge, nNuclio := 100, 1000, 200
	if o.Quick {
		sizes = sizes[:2]
		labels = labels[:2]
		conc, nSledge, nNuclio = 8, 40, 12
	}
	sp, err := startServers(o, []string{"echo"})
	if err != nil {
		return nil, err
	}
	defer sp.close()

	tbl := &Table{
		ID:      "fig7",
		Title:   "Network-transfer function: throughput and latency vs payload size",
		Headers: append([]string{"payload"}, pointHeaders[1:]...),
		Notes: []string{
			fmt.Sprintf("concurrency %d; requests per point: sledge %d, nuclio %d", conc, nSledge, nNuclio),
		},
	}
	for i, size := range sizes {
		pt, err := sp.measure("echo", conc, nSledge, nNuclio, apps.EchoPayload(size))
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, pointRow(labels[i], pt))
		o.logf("fig7: %s sledge=%.0frps nuclio=%.0frps", labels[i], pt.sledgeRPS, pt.nuclioRPS)
	}
	return []*Table{tbl}, nil
}

// RunFig8 reproduces Figure 8: the five real-world applications at 100
// concurrent connections.
func RunFig8(o Options) ([]*Table, error) {
	type workload struct {
		name             string
		nSledge, nNuclio int
	}
	wls := []workload{
		{"gps-ekf", 1500, 300},
		{"gocr", 600, 200},
		{"cifar10", 80, 120},
		{"resize", 30, 60},
		{"lpd", 20, 50},
	}
	conc := 100
	if o.Quick {
		conc = 4
		for i := range wls {
			wls[i].nSledge = 10
			wls[i].nNuclio = 6
		}
	}
	names := make([]string, len(wls))
	for i, wl := range wls {
		names[i] = wl.name
	}
	sp, err := startServers(o, names)
	if err != nil {
		return nil, err
	}
	defer sp.close()

	tbl := &Table{
		ID:      "fig8",
		Title:   "Real-world applications: throughput and latency at concurrency " + fmt.Sprint(conc),
		Headers: append([]string{"application"}, pointHeaders[1:]...),
		Notes: []string{
			"nuclio executes native code per process; sledge executes Wasm — compute-heavy apps (resize, lpd) narrow or invert the gap exactly as in the paper",
		},
	}
	for _, wl := range wls {
		app, _ := apps.Get(wl.name)
		pt, err := sp.measure(wl.name, conc, wl.nSledge, wl.nNuclio, app.GenRequest())
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, pointRow(wl.name, pt))
		o.logf("fig8: %s sledge=%.0frps nuclio=%.0frps", wl.name, pt.sledgeRPS, pt.nuclioRPS)
	}
	return []*Table{tbl}, nil
}

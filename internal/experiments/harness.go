// Package experiments contains one driver per table and figure in the
// paper's evaluation (§5), plus the ablations DESIGN.md calls out. Each
// driver runs the workloads through the real runtime(s) and renders a text
// table with the same rows/series the paper reports.
//
// Every driver honours Options.Quick, which shrinks problem sizes and
// iteration counts so the full suite can run in CI; the cmd/sledge-bench
// binary runs the full-size configuration.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Options configures an experiment run.
type Options struct {
	// Quick shrinks sizes/iterations for fast runs (tests).
	Quick bool
	// Workers overrides the Sledge worker count (default GOMAXPROCS).
	Workers int
	// KernelFilter restricts fig5/table1 to the named PolyBench kernels
	// (empty = all 30).
	KernelFilter []string
	// Log receives progress lines; nil discards them.
	Log io.Writer
	// SnapshotPath, when set, makes experiments that support it (overload)
	// write a machine-readable JSON result there.
	SnapshotPath string
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Table is a rendered experiment result.
type Table struct {
	ID      string // e.g. "fig5", "table2"
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table in aligned text form.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Registry maps experiment IDs to their drivers.
var Registry = map[string]func(Options) ([]*Table, error){
	"fig5":     func(o Options) ([]*Table, error) { return runFig5Table1(o) },
	"table1":   func(o Options) ([]*Table, error) { return runFig5Table1(o) },
	"fig6":     RunFig6,
	"fig7":     RunFig7,
	"fig8":     RunFig8,
	"table2":   RunTable2,
	"table3":   RunTable3,
	"memfoot":  RunMemFootprint,
	"cpubound": RunCPUBound,
	"overload": RunOverload,
	"cluster":  RunContinuum,
	"regalloc": RunRegallocAblation,
	"meter":    RunMeterAblation,
	"sched":    RunSchedBench,
	"tierup":   RunTierup,
	"warm":     RunWarm,
	"chain":    RunChain,
	"ablation": func(o Options) ([]*Table, error) {
		var out []*Table
		for _, fn := range []func(Options) ([]*Table, error){
			RunAblationQuantum, RunAblationDistribution, RunAblationBounds, RunAblationStartup, RunAblationWarm,
		} {
			ts, err := fn(o)
			if err != nil {
				return out, err
			}
			out = append(out, ts...)
		}
		return out, nil
	},
}

// IDs lists experiment IDs in paper order.
func IDs() []string {
	return []string{"fig5", "table1", "fig6", "fig7", "fig8", "table2", "table3", "memfoot", "cpubound", "overload", "cluster", "regalloc", "meter", "sched", "tierup", "warm", "chain", "ablation"}
}

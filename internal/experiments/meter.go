package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"sledge/internal/abi"
	"sledge/internal/engine"
	"sledge/internal/stats"
	"sledge/internal/workloads/polybench"
)

// meterSliceFuel is the preemption quantum: each Run slice gets this much
// gas, so a kernel burning hundreds of millions of gas is preempted and
// resumed hundreds of times — the regime where metering cost shows up, and
// the regime the scheduler actually runs in.
const meterSliceFuel = 1 << 20

// meterEntry is one kernel row of the metering ablation.
type meterEntry struct {
	Name         string  `json:"name"`
	N            int     `json:"n,omitempty"`
	BlockNS      int64   `json:"block_ns_per_op"`
	PerInstrNS   int64   `json:"per_instr_ns_per_op"`
	Speedup      float64 `json:"speedup"`
	Gas          uint64  `json:"gas"`
	Slices       int     `json:"slices"`
	ChargePoints int     `json:"charge_points"`
	MaxBlockCost int     `json:"max_block_cost"`
}

// meterSnapshot is the machine-readable BENCH_meter.json payload.
type meterSnapshot struct {
	Description string       `json:"description"`
	Go          string       `json:"go"`
	Quick       bool         `json:"quick"`
	SliceFuel   int64        `json:"slice_fuel"`
	Polybench   []meterEntry `json:"polybench"`
	Geomean     float64      `json:"polybench_geomean_speedup"`
	Acceptance  string       `json:"acceptance"`
}

// runMeterSliced drives one instance to completion under the preemptive
// policy — fixed-fuel slices, resuming on every yield — and returns the
// checksum, total gas, and slice count.
func runMeterSliced(cm *engine.CompiledModule, n int) (float64, uint64, int, error) {
	inst := cm.Acquire()
	inst.HostData = abi.NewContext(nil)
	if err := inst.Start("kernel", uint64(uint32(n))); err != nil {
		return 0, 0, 0, err
	}
	slices := 0
	for {
		st, err := inst.Run(meterSliceFuel)
		if err != nil {
			return 0, 0, 0, err
		}
		slices++
		switch st {
		case engine.StatusDone:
			bits, err := inst.Result()
			if err != nil {
				return 0, 0, 0, err
			}
			gas := inst.Gas
			cm.Release(inst)
			return math.Float64frombits(bits), gas, slices, nil
		case engine.StatusYielded:
		default:
			return 0, 0, 0, fmt.Errorf("meter: unexpected status %s", st)
		}
	}
}

// RunMeterAblation measures what basic-block fuel metering buys over the
// per-instruction oracle: both configurations run the PolyBench suite to
// completion under the preemptive policy (fixed-fuel slices, resume on
// yield), differing only in NoBlockMeter. Per-instruction metering pays a
// fuel check and decrement on every dispatch; block metering pays one
// amortized iGasCharge per region, so loop bodies below MaxUncharged carry
// no metering work at all on the back edge. Gas must be bit-identical
// between the two modes — it is the same static charge stream — so the
// ablation isolates pure check overhead. With Options.SnapshotPath set it
// also writes the BENCH_meter.json snapshot.
func RunMeterAblation(o Options) ([]*Table, error) {
	iters := 5
	if o.Quick {
		iters = 2
	}
	blockCfg := engine.Config{Tier: engine.TierOptimized, Bounds: engine.BoundsGuard}
	instrCfg := blockCfg
	instrCfg.NoBlockMeter = true

	snap := meterSnapshot{
		Description: "Basic-block fuel metering ablation under the preemptive policy (fixed-fuel slices, BoundsGuard): block metering charges whole regions at static charge points (loop headers, call sites, MaxUncharged splits) with no per-dispatch fuel check; NoBlockMeter is the per-instruction oracle. Gas is bit-identical across both. make bench-meter",
		Go:          runtime.Version(),
		Quick:       o.Quick,
		SliceFuel:   meterSliceFuel,
	}

	filter := make(map[string]bool, len(o.KernelFilter))
	for _, name := range o.KernelFilter {
		filter[name] = true
	}
	var speedups []float64
	for ki := range polybench.Kernels {
		k := &polybench.Kernels[ki]
		if len(filter) > 0 && !filter[k.Name] {
			continue
		}
		n := k.DefaultN
		if o.Quick {
			n = k.TestN
		}
		want := k.Native(n)
		timeCfg := func(cfg engine.Config) (time.Duration, uint64, int, *engine.CompiledModule, error) {
			cm, err := k.Compile(n, cfg)
			if err != nil {
				return 0, 0, 0, nil, fmt.Errorf("meter: %s: %w", k.Name, err)
			}
			var gas uint64
			var slices int
			var runErr error
			d := medianTime(iters, func() error {
				got, g, s, err := runMeterSliced(cm, n)
				if err != nil {
					return err
				}
				if !closeEnough(got, want) {
					return fmt.Errorf("%s: checksum %v != native %v", k.Name, got, want)
				}
				gas, slices = g, s
				return nil
			}, &runErr)
			return d, gas, slices, cm, runErr
		}
		blockD, blockGas, slices, cm, err := timeCfg(blockCfg)
		if err != nil {
			return nil, err
		}
		instrD, instrGas, _, _, err := timeCfg(instrCfg)
		if err != nil {
			return nil, err
		}
		if blockGas != instrGas {
			return nil, fmt.Errorf("meter: %s: gas diverged between metering modes: block %d, per-instr %d",
				k.Name, blockGas, instrGas)
		}
		sp := float64(instrD) / float64(blockD)
		speedups = append(speedups, sp)
		an := cm.Analysis()
		snap.Polybench = append(snap.Polybench, meterEntry{
			Name: k.Name, N: n,
			BlockNS: blockD.Nanoseconds(), PerInstrNS: instrD.Nanoseconds(),
			Speedup: sp, Gas: blockGas, Slices: slices,
			ChargePoints: an.ChargePoints, MaxBlockCost: an.MaxBlockCost,
		})
		o.logf("meter: %s n=%d block=%v per-instr=%v (%.2fx) gas=%d slices=%d",
			k.Name, n, blockD, instrD, sp, blockGas, slices)
	}
	if len(speedups) == 0 {
		return nil, fmt.Errorf("meter: no kernels selected")
	}
	snap.Geomean = stats.GeoMean(speedups)
	snap.Acceptance = fmt.Sprintf(
		"PolyBench geomean speedup floor 1.0 under the preemptive policy (measured: %.3f, quick=%v); gas bit-identical between metering modes on every kernel",
		snap.Geomean, o.Quick)

	tbl := &Table{
		ID:      "meter",
		Title:   "Block fuel metering vs per-instruction oracle (preemptive slices, BoundsGuard)",
		Headers: []string{"kernel", "block", "per-instr", "speedup", "slices"},
		Notes: []string{
			fmt.Sprintf("PolyBench geomean speedup: %.3fx over %d kernels", snap.Geomean, len(speedups)),
			fmt.Sprintf("slice fuel %d gas; block mode checks fuel only at charge points, per-instruction mode on every dispatch", int64(meterSliceFuel)),
			"gas verified bit-identical between modes on every kernel",
		},
	}
	for _, e := range snap.Polybench {
		tbl.Rows = append(tbl.Rows, []string{
			e.Name,
			time.Duration(e.BlockNS).String(),
			time.Duration(e.PerInstrNS).String(),
			fmt.Sprintf("%.2fx", e.Speedup),
			fmt.Sprintf("%d", e.Slices),
		})
	}

	if o.SnapshotPath != "" {
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(o.SnapshotPath, append(data, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("meter: snapshot: %w", err)
		}
		o.logf("meter: snapshot written to %s", o.SnapshotPath)
	}
	return []*Table{tbl}, nil
}

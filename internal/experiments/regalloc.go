package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"sledge/internal/engine"
	"sledge/internal/stats"
	"sledge/internal/workloads/apps"
	"sledge/internal/workloads/polybench"
)

// regallocEntry is one benchmark row of the register-allocation ablation.
type regallocEntry struct {
	Name       string  `json:"name"`
	N          int     `json:"n,omitempty"`
	RegisterNS int64   `json:"register_ns_per_op"`
	StackNS    int64   `json:"stack_ns_per_op"`
	Speedup    float64 `json:"speedup"`
}

// regallocSnapshot is the machine-readable BENCH_regalloc.json payload.
type regallocSnapshot struct {
	Description      string               `json:"description"`
	Go               string               `json:"go"`
	Quick            bool                 `json:"quick"`
	Bounds           string               `json:"bounds"`
	Polybench        []regallocEntry      `json:"polybench"`
	PolybenchGeomean float64              `json:"polybench_geomean_speedup"`
	GemmStats        engine.RegallocStats `json:"gemm_regalloc_stats"`
	Apps             []regallocEntry      `json:"apps"`
	AppsGeomean      float64              `json:"apps_geomean_speedup"`
	Acceptance       string               `json:"acceptance"`
}

// regallocAppNames are the Table 2 real-world functions.
var regallocAppNames = []string{"gps-ekf", "gocr", "cifar10", "resize", "lpd"}

// RunRegallocAblation measures the register-form IR against the stack-form
// hot loop (NoRegalloc) under BoundsSoftware — the software-checked strategy
// is where dispatch count dominates, so it isolates what retiring the
// operand stack buys. Covers the PolyBench Fig. 5 set and the Table 2
// applications; with Options.SnapshotPath set it also writes the
// BENCH_regalloc.json snapshot.
func RunRegallocAblation(o Options) ([]*Table, error) {
	iters := 5
	appIters := 30
	if o.Quick {
		iters = 2
		appIters = 3
	}
	regCfg := engine.Config{Tier: engine.TierOptimized, Bounds: engine.BoundsSoftware}
	stkCfg := regCfg
	stkCfg.NoRegalloc = true

	snap := regallocSnapshot{
		Description: "Register-allocated IR ablation under BoundsSoftware: operand-stack slots become fixed frame-slab registers (static heights in cinstr.h) and the three-address peephole fuses LL arithmetic and compare-and-branch forms; NoRegalloc keeps the push/pop stack loop. make bench-regalloc",
		Go:          runtime.Version(),
		Quick:       o.Quick,
		Bounds:      "software",
	}

	filter := make(map[string]bool, len(o.KernelFilter))
	for _, name := range o.KernelFilter {
		filter[name] = true
	}
	var speedups []float64
	for ki := range polybench.Kernels {
		k := &polybench.Kernels[ki]
		if len(filter) > 0 && !filter[k.Name] {
			continue
		}
		n := k.DefaultN
		if o.Quick {
			n = k.TestN
		}
		want := k.Native(n)
		timeCfg := func(cfg engine.Config) (time.Duration, *engine.CompiledModule, error) {
			cm, err := k.Compile(n, cfg)
			if err != nil {
				return 0, nil, fmt.Errorf("regalloc: %s: %w", k.Name, err)
			}
			var runErr error
			d := medianTime(iters, func() error {
				got, err := polybench.RunWasm(cm, n)
				if err != nil {
					return err
				}
				if !closeEnough(got, want) {
					return fmt.Errorf("%s: checksum %v != native %v", k.Name, got, want)
				}
				return nil
			}, &runErr)
			return d, cm, runErr
		}
		regD, regCM, err := timeCfg(regCfg)
		if err != nil {
			return nil, err
		}
		stkD, _, err := timeCfg(stkCfg)
		if err != nil {
			return nil, err
		}
		sp := float64(stkD) / float64(regD)
		speedups = append(speedups, sp)
		snap.Polybench = append(snap.Polybench, regallocEntry{
			Name: k.Name, N: n,
			RegisterNS: regD.Nanoseconds(), StackNS: stkD.Nanoseconds(),
			Speedup: sp,
		})
		if k.Name == "gemm" {
			snap.GemmStats = regCM.Regalloc()
		}
		o.logf("regalloc: %s n=%d register=%v stack=%v (%.2fx)", k.Name, n, regD, stkD, sp)
	}
	if len(speedups) == 0 {
		return nil, fmt.Errorf("regalloc: no kernels selected")
	}
	snap.PolybenchGeomean = stats.GeoMean(speedups)

	var appSpeedups []float64
	for _, name := range regallocAppNames {
		app, ok := apps.Get(name)
		if !ok {
			return nil, fmt.Errorf("regalloc: unknown app %s", name)
		}
		req := app.GenRequest()
		timeApp := func(cfg engine.Config) (time.Duration, error) {
			cm, err := app.Compile(cfg)
			if err != nil {
				return 0, fmt.Errorf("regalloc: %s: %w", name, err)
			}
			var runErr error
			d := medianTime(appIters, func() error {
				_, err := apps.RunWasm(cm, req)
				return err
			}, &runErr)
			return d, runErr
		}
		regD, err := timeApp(regCfg)
		if err != nil {
			return nil, err
		}
		stkD, err := timeApp(stkCfg)
		if err != nil {
			return nil, err
		}
		sp := float64(stkD) / float64(regD)
		appSpeedups = append(appSpeedups, sp)
		snap.Apps = append(snap.Apps, regallocEntry{
			Name:       name,
			RegisterNS: regD.Nanoseconds(), StackNS: stkD.Nanoseconds(),
			Speedup: sp,
		})
		o.logf("regalloc: app %s register=%v stack=%v (%.2fx)", name, regD, stkD, sp)
	}
	snap.AppsGeomean = stats.GeoMean(appSpeedups)
	snap.Acceptance = fmt.Sprintf(
		"PolyBench geomean speedup floor 1.15 (measured: %.3f, quick=%v); differential fuzz FuzzDifferentialElision covers register/stack/naive x all bounds strategies",
		snap.PolybenchGeomean, o.Quick)

	tbl := &Table{
		ID:      "regalloc",
		Title:   "Register-form IR vs stack-form hot loop (BoundsSoftware)",
		Headers: []string{"benchmark", "register", "stack", "speedup"},
		Notes: []string{
			fmt.Sprintf("PolyBench geomean speedup: %.3fx over %d kernels", snap.PolybenchGeomean, len(speedups)),
			fmt.Sprintf("Table 2 apps geomean speedup: %.3fx", snap.AppsGeomean),
			"register form annotates every instruction with its static operand height and executes with zero sp bookkeeping; NoRegalloc is the PR-3 stack loop",
		},
	}
	for _, e := range snap.Polybench {
		tbl.Rows = append(tbl.Rows, []string{
			e.Name,
			time.Duration(e.RegisterNS).String(),
			time.Duration(e.StackNS).String(),
			fmt.Sprintf("%.2fx", e.Speedup),
		})
	}
	for _, e := range snap.Apps {
		tbl.Rows = append(tbl.Rows, []string{
			"app:" + e.Name,
			time.Duration(e.RegisterNS).String(),
			time.Duration(e.StackNS).String(),
			fmt.Sprintf("%.2fx", e.Speedup),
		})
	}

	if o.SnapshotPath != "" {
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(o.SnapshotPath, append(data, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("regalloc: snapshot: %w", err)
		}
		o.logf("regalloc: snapshot written to %s", o.SnapshotPath)
	}
	return []*Table{tbl}, nil
}

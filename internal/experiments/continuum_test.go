package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sledge/internal/cluster"
)

// TestContinuumSmoke runs the edge–cloud continuum experiment end-to-end at
// quick sizes: the 3-node in-process cluster comes up, the offload path is
// actually exercised (offloads > 0 under overload), and federated routing
// beats the isolated spray at 2x aggregate load. The acceptance-grade
// >= 1.3x goodput bar comes from `make bench-cluster` at full sizes; the
// smoke asserts the qualitative ordering so CI stays robust on small hosts.
func TestContinuumSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("continuum smoke skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "bench_cluster.json")
	tables, err := RunContinuum(Options{Quick: true, SnapshotPath: path})
	if err != nil {
		t.Fatalf("continuum: %v", err)
	}
	if len(tables) != 1 || len(tables[0].Rows) == 0 {
		t.Fatalf("continuum produced %d tables", len(tables))
	}
	var buf bytes.Buffer
	tables[0].Render(&buf)
	t.Logf("\n%s", buf.String())

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	var snap struct {
		AggregateRPS float64 `json:"aggregate_capacity_rps"`
		Nodes        []struct {
			Name        string  `json:"name"`
			CapacityRPS float64 `json:"capacity_rps"`
		} `json:"nodes"`
		Points []struct {
			Multiplier float64 `json:"multiplier"`
			Mode       string  `json:"mode"`
			GoodputRPS float64 `json:"goodput_rps"`
			Errors     int     `json:"errors"`
			Offloads   uint64  `json:"offloads"`
		} `json:"points"`
		FederatedSpeedup map[string]float64 `json:"federated_over_isolated_goodput"`
		Router           cluster.Snapshot   `json:"router"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("decode snapshot: %v", err)
	}
	if len(snap.Nodes) != 3 || snap.AggregateRPS <= 0 {
		t.Fatalf("topology = %+v, aggregate = %.0f", snap.Nodes, snap.AggregateRPS)
	}
	if len(snap.Points) != 4 {
		t.Fatalf("points = %d, want 4 (2 mults x 2 modes)", len(snap.Points))
	}
	// The load-bearing claim, qualitatively: offload beats shed at 2x.
	ratio, ok := snap.FederatedSpeedup["2x"]
	if !ok {
		t.Fatal("snapshot missing 2x federated/isolated ratio")
	}
	if ratio <= 1 {
		t.Errorf("federated goodput did not beat isolated spray at 2x: %.2fx", ratio)
	}
	if snap.Router.Offloads == 0 {
		t.Error("offload path never exercised (router offloads = 0)")
	}
	for _, pt := range snap.Points {
		if pt.Mode == "federated" && pt.Multiplier >= 2 && pt.Offloads == 0 {
			t.Errorf("federated %gx point recorded no offloads", pt.Multiplier)
		}
	}
}

package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestSchedBenchSmoke exercises the full bench-sched path at quick sizes:
// every (workers × distribution) cell must complete its closed loop and
// the snapshot JSON must round-trip with full sweep coverage. The
// acceptance numbers (work-stealing beating global-deque at workers >= 4)
// live in BENCH_sched.json, produced by `make bench-sched`; quick sizes
// only cover the 1- and 2-worker cells.
func TestSchedBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sched bench smoke skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "sched.json")
	tables, err := RunSchedBench(Options{Quick: true, SnapshotPath: path})
	if err != nil {
		t.Fatalf("sched bench: %v", err)
	}
	if len(tables) != 1 || len(tables[0].Rows) == 0 {
		t.Fatalf("no results: %+v", tables)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	var snap schedSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot decode: %v", err)
	}
	if len(snap.Sweep) == 0 {
		t.Fatal("snapshot has no worker entries")
	}
	for _, we := range snap.Sweep {
		if len(we.Modes) != len(schedBenchDists) {
			t.Fatalf("workers=%d covered %d of %d distribution modes", we.Workers, len(we.Modes), len(schedBenchDists))
		}
		for _, m := range we.Modes {
			if m.Requests == 0 || m.ThroughputRPS <= 0 {
				t.Errorf("workers=%d %s: empty cell %+v", we.Workers, m.Mode, m)
			}
			if m.FirstRunP99NS <= 0 {
				t.Errorf("workers=%d %s: no first-quantum latency recorded", we.Workers, m.Mode)
			}
		}
	}
}

package experiments

import (
	"bytes"
	"testing"
)

// TestChainSmoke runs the function-composition benchmark end-to-end at
// quick sizes. The identity gates are absolute even here: the pipeline and
// HTTP self-call modes must return bit-identical replies and charge
// bit-identical per-stage gas, and every measured reply must validate
// against the native chain. The speedup floor is relaxed from the 3x
// acceptance bound (CI machines are noisy and the quick frame is tiny) but
// the co-located path must still clearly win; the acceptance-grade number
// comes from `make bench-chain` at full sizes.
func TestChainSmoke(t *testing.T) {
	var snap chainSnapshot
	tables, err := runChain(Options{Quick: true}, &snap)
	if err != nil {
		t.Fatalf("chain: %v", err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 2 {
		t.Fatalf("chain produced %d tables, want 1 with 2 rows", len(tables))
	}
	var buf bytes.Buffer
	tables[0].Render(&buf)
	t.Logf("\n%s", buf.String())

	if !snap.OutputIdentical {
		t.Error("pipeline and self-call replies diverge")
	}
	if !snap.GasIdentical {
		t.Errorf("per-stage gas diverges between modes: %v", snap.GasPerStage)
	}
	if len(snap.Modes) != 2 {
		t.Fatalf("ran %d modes, want 2", len(snap.Modes))
	}
	for _, m := range snap.Modes {
		if m.Errors > 0 {
			t.Errorf("%s: %d chain errors", m.Mode, m.Errors)
		}
		if m.Requests == 0 || m.P50NS == 0 {
			t.Errorf("%s: no chains measured (%+v)", m.Mode, m)
		}
	}
	// rgb2gray declares via sledge.output (fast), resize streams via
	// sledge.write (buffered): the load run must see both kinds.
	if snap.FastHandoffs == 0 || snap.BufferedHandoffs == 0 {
		t.Errorf("handoffs = %d fast / %d buffered, want both nonzero", snap.FastHandoffs, snap.BufferedHandoffs)
	}
	if snap.HandoffBytes == 0 {
		t.Error("no handoff bytes accounted")
	}
	if snap.SpeedupP50 < 1.3 {
		t.Errorf("pipeline speedup %.2fx, want >= 1.3x even at quick sizes", snap.SpeedupP50)
	}
}

package experiments

import (
	"bytes"
	"testing"
)

// TestWarmSmoke runs the warm-start benchmark end-to-end at quick sizes:
// both halves must complete, every reply must validate, the snapshot path
// must beat start-function replay by the acceptance margin (the gap is
// orders of magnitude, so even the quick run clears 5x), and the budgeted
// fleet must actually churn its cache — pool purges and body drops with
// lazy recompiles — while holding goodput near the unbounded run. The
// acceptance-grade fleet numbers come from `make bench-warm` at full
// sizes.
func TestWarmSmoke(t *testing.T) {
	var snap warmSnapshot
	tables, err := runWarm(Options{Quick: true}, &snap)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if len(tables) != 2 {
		t.Fatalf("warm produced %d tables, want 2", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s has no rows", tbl.ID)
		}
		var buf bytes.Buffer
		tbl.Render(&buf)
		t.Logf("\n%s", buf.String())
	}

	fi := snap.FirstInvoke
	if len(fi.Modes) != 3 {
		t.Fatalf("first-invoke ran %d modes, want 3", len(fi.Modes))
	}
	if fi.SnapshotBytes == 0 {
		t.Errorf("init module captured no snapshot")
	}
	if fi.SpeedupP50 < 5 {
		t.Errorf("snapshot first-invoke speedup %.1fx, want >= 5x", fi.SpeedupP50)
	}

	fl := snap.Fleet
	if len(fl.Modes) != 2 {
		t.Fatalf("fleet ran %d modes, want 2", len(fl.Modes))
	}
	for _, m := range fl.Modes {
		if m.Errors > 0 {
			t.Errorf("fleet %s: %d request errors", m.Mode, m.Errors)
		}
		if m.GoodputRPS == 0 {
			t.Errorf("fleet %s completed no requests", m.Mode)
		}
	}
	budgeted := fl.Modes[1]
	if budgeted.Cache == nil {
		t.Fatalf("budgeted mode reported no cache stats")
	}
	if budgeted.Cache.PurgedIdle == 0 && budgeted.Cache.DroppedSnapshots == 0 && budgeted.Cache.DroppedBodies == 0 {
		t.Errorf("budgeted cache evicted nothing under a /4 budget: %+v", *budgeted.Cache)
	}
	if budgeted.Cache.ResidentBytes > budgeted.BudgetBytes*2 {
		t.Errorf("budgeted resident %d far above budget %d", budgeted.Cache.ResidentBytes, budgeted.BudgetBytes)
	}
	// Quick sizes are too small for the 0.9 acceptance bound to be stable,
	// but the bounded cache must not collapse goodput.
	if fl.GoodputRatio < 0.5 {
		t.Errorf("budgeted goodput ratio %.2f, want >= 0.5 even at quick sizes", fl.GoodputRatio)
	}
}

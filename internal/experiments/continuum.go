package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"time"

	"sledge/internal/abi"
	"sledge/internal/admission"
	"sledge/internal/cluster"
	"sledge/internal/core"
	"sledge/internal/loadgen"
	"sledge/internal/workloads/apps"
)

// RunContinuum is the edge–cloud continuum experiment: two constrained edge
// nodes plus one elastic cloud node serve the I/O-bound fetch workload, and
// the same locality-skewed open-loop load (most traffic arrives near the
// edges) is offered two ways:
//
//   - isolated: the load generator sprays requests across the three node
//     listeners with the locality weights (45/45/10); a saturated node can
//     only shed. This is the ablation baseline — three independent Sledges.
//   - federated: every request goes to the cluster router, which places it
//     by link latency + modeled queue wait + service estimate and offloads
//     admission rejections to the next-best peer within the deadline.
//
// The workload is fetch (a KV read against a latent store), so each node's
// capacity is its admission window divided by the storage latency — slots
// drain concurrently on the event loop while sandboxes block. Capacity is
// therefore a per-node property that genuinely adds up across colocated
// in-process nodes, which a CPU-bound workload cannot offer (all three
// nodes would share the host's cores and the Go scheduler would reassign
// idle cycles across them, erasing the topology this experiment studies).
//
// The claim under test: at 2x the continuum's aggregate capacity, federated
// offload converts most of the edge sheds into successful (in-deadline)
// completions on the under-utilized cloud, so cluster goodput beats the sum
// of the isolated nodes' goodput by >= 1.3x while admitted p99 stays within
// the deadline.
func RunContinuum(o Options) ([]*Table, error) {
	kvLat := 25 * time.Millisecond
	capacityReqs := 16 // closed-loop requests per admission slot
	pointDur := 2 * time.Second
	deadline := time.Second
	mults := []float64{1, 2, 4}
	edgeSlots, cloudSlots := 4, 16
	if o.Quick {
		// Quick mode shrinks the topology, not just the durations: halved
		// admission windows against a slower store cut the offered rps 4x
		// at the same overload multipliers, so the run stays meaningful on
		// a single race-instrumented core (at full-size load the router's
		// extra HTTP hop saturates the host CPU and the measurement stops
		// being about placement).
		kvLat = 50 * time.Millisecond
		capacityReqs = 8
		pointDur = 600 * time.Millisecond
		deadline = 400 * time.Millisecond
		mults = []float64{1, 2}
		edgeSlots, cloudSlots = 2, 8
	}

	// The continuum: two small edge devices close by, one elastic cloud
	// pool a longer link away. At full size an edge holds 4 concurrent
	// fetches, the cloud 16; with a 25ms store that is ~160 rps per edge
	// and ~640 rps for the cloud.
	type nodeSpec struct {
		name    string
		class   cluster.Class
		workers int // scheduler cores
		slots   int // admission window (concurrent fetches)
		link    time.Duration
		weight  int // locality share of the isolated spray
	}
	specs := []nodeSpec{
		{"edge0", cluster.ClassEdge, 1, edgeSlots, 500 * time.Microsecond, 45},
		{"edge1", cluster.ClassEdge, 1, edgeSlots, 500 * time.Microsecond, 45},
		{"cloud0", cluster.ClassCloud, 2, cloudSlots, 5 * time.Millisecond, 10},
	}

	// One shared object store; every node sees the same simulated access
	// latency to it.
	store := abi.NewMapKV()
	objVal := bytes.Repeat([]byte("x"), 64)
	store.Set("obj", objVal)
	body := []byte("obj")
	validate := func(b []byte) error {
		if !bytes.Equal(b, objVal) {
			return fmt.Errorf("fetch returned %d bytes, want %d", len(b), len(objVal))
		}
		return nil
	}

	router := cluster.New(cluster.Config{DefaultDeadline: deadline, DefaultEstimate: kvLat})
	defer router.Close()
	var (
		nodes   []*core.Runtime
		urls    []string
		targets []loadgen.Target
	)
	defer func() {
		for _, rt := range nodes {
			rt.Close()
		}
	}()
	for _, sp := range specs {
		rt, url, err := startContinuumNode(sp.workers, &admission.Config{
			// The capacity hint is the admission window, not the core
			// count: blocked fetches drain concurrently on the event loop.
			Workers:         sp.slots,
			MaxInflight:     sp.slots,
			MaxQueue:        2 * sp.slots,
			DefaultDeadline: deadline,
			DefaultEstimate: kvLat,
		}, &abi.LatentKV{KVStore: store, Delay: kvLat})
		if err != nil {
			return nil, fmt.Errorf("continuum %s: %w", sp.name, err)
		}
		nodes = append(nodes, rt)
		urls = append(urls, url)
		targets = append(targets, loadgen.Target{URL: url + "/fetch", Weight: sp.weight})
		if err := router.Register(cluster.NodeConfig{
			Name: sp.name, Class: sp.class, Link: sp.link, Runtime: rt,
		}); err != nil {
			return nil, fmt.Errorf("continuum register %s: %w", sp.name, err)
		}
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go router.Serve(rln)
	routerURL := "http://" + rln.Addr().String()

	// Closed-loop capacity per node (doubles as warmup: sandbox pools,
	// admission EWMA, connections). Aggregate capacity is what the
	// continuum could serve with perfect placement.
	capacity := make([]float64, len(urls))
	var aggregate float64
	for i, url := range urls {
		res, err := loadgen.Run(loadgen.Options{
			URL: url + "/fetch", Concurrency: 2 * specs[i].slots,
			Requests: capacityReqs * specs[i].slots, Body: body, Validate: validate,
		})
		if err != nil {
			return nil, fmt.Errorf("continuum capacity %s: %w", specs[i].name, err)
		}
		capacity[i] = res.ThroughputRPS
		aggregate += res.ThroughputRPS
		o.logf("continuum: %s capacity = %.0f rps (%d slots, %v store)",
			specs[i].name, capacity[i], specs[i].slots, kvLat)
	}
	o.logf("continuum: aggregate capacity = %.0f rps", aggregate)

	type pointJSON struct {
		Multiplier  float64 `json:"multiplier"`
		Mode        string  `json:"mode"`
		OfferedRPS  float64 `json:"offered_rps"`
		Issued      int     `json:"issued"`
		GoodputRPS  float64 `json:"goodput_rps"`
		AdmittedP50 float64 `json:"admitted_p50_ms"`
		AdmittedP99 float64 `json:"admitted_p99_ms"`
		Rejected    int     `json:"rejected"`
		Errors      int     `json:"errors"`
		Offloads    uint64  `json:"offloads,omitempty"`
		Hedges      uint64  `json:"hedges,omitempty"`
		Sheds       uint64  `json:"cluster_sheds,omitempty"`
	}
	var points []pointJSON
	ratios := map[float64]float64{}

	tbl := &Table{
		ID:      "cluster",
		Title:   "Edge-cloud continuum: isolated spray vs federated offload under overload",
		Headers: []string{"offered", "mode", "goodput rps", "goodput/cap", "p50 adm", "p99 adm", "shed", "offloads", "errors"},
		Notes: []string{
			fmt.Sprintf("2 edge nodes (%d slots, 0.5ms link) + 1 cloud node (%d slots, 5ms link), fetch vs %v store",
				edgeSlots, cloudSlots, kvLat),
			fmt.Sprintf("aggregate closed-loop capacity %.0f rps; deadline %v", aggregate, deadline),
			"isolated = weighted spray 45/45/10 across node listeners (locality skew, no offload)",
			"federated = all load on the cluster router (offload-instead-of-shed)",
		},
	}
	for _, mult := range mults {
		var isolated, federated float64
		for _, mode := range []string{"isolated", "federated"} {
			lopts := loadgen.Options{
				Body:     body,
				Validate: validate,
				Rate:     mult * aggregate,
				Duration: pointDur,
				Timeout:  10 * time.Second,
			}
			if mode == "isolated" {
				lopts.Targets = targets
			} else {
				lopts.URL = routerURL + "/fetch"
			}
			before := router.Stats()
			res, err := loadgen.Run(lopts)
			if err != nil {
				return nil, fmt.Errorf("continuum %gx %s: %w", mult, mode, err)
			}
			after := router.Stats()
			pt := pointJSON{
				Multiplier:  mult,
				Mode:        mode,
				OfferedRPS:  res.OfferedRPS,
				Issued:      res.Issued,
				GoodputRPS:  res.GoodputRPS,
				AdmittedP50: float64(res.Summary.P50) / 1e6,
				AdmittedP99: float64(res.Summary.P99) / 1e6,
				Rejected:    res.Rejected,
				Errors:      res.Errors,
			}
			if mode == "federated" {
				pt.Offloads = after.Offloads - before.Offloads
				pt.Hedges = after.Hedges - before.Hedges
				pt.Sheds = after.Sheds - before.Sheds
				federated = res.GoodputRPS
			} else {
				isolated = res.GoodputRPS
			}
			points = append(points, pt)
			ratio := 0.0
			if aggregate > 0 {
				ratio = res.GoodputRPS / aggregate
			}
			tbl.Rows = append(tbl.Rows, []string{
				fmt.Sprintf("%gx", mult),
				mode,
				fmt.Sprintf("%.0f", pt.GoodputRPS),
				fmt.Sprintf("%.2f", ratio),
				fmt.Sprintf("%.1fms", pt.AdmittedP50),
				fmt.Sprintf("%.1fms", pt.AdmittedP99),
				fmt.Sprintf("%d", pt.Rejected),
				fmt.Sprintf("%d", pt.Offloads),
				fmt.Sprintf("%d", pt.Errors),
			})
			o.logf("continuum: %gx %s goodput=%.0f p99=%.1fms shed=%d offloads=%d",
				mult, mode, pt.GoodputRPS, pt.AdmittedP99, pt.Rejected, pt.Offloads)
		}
		if isolated > 0 {
			ratios[mult] = federated / isolated
			o.logf("continuum: %gx federated/isolated goodput = %.2fx", mult, ratios[mult])
		}
	}

	if o.SnapshotPath != "" {
		type nodeJSON struct {
			Name        string  `json:"name"`
			Class       string  `json:"class"`
			Workers     int     `json:"workers"`
			Slots       int     `json:"slots"`
			LinkMS      float64 `json:"link_ms"`
			SprayWeight int     `json:"spray_weight"`
			CapacityRPS float64 `json:"capacity_rps"`
		}
		var nj []nodeJSON
		for i, sp := range specs {
			nj = append(nj, nodeJSON{sp.name, sp.class.String(), sp.workers, sp.slots,
				float64(sp.link) / 1e6, sp.weight, capacity[i]})
		}
		snap := struct {
			App              string             `json:"app"`
			KVLatencyMS      float64            `json:"kv_latency_ms"`
			Quick            bool               `json:"quick"`
			DeadlineMS       float64            `json:"deadline_ms"`
			AggregateRPS     float64            `json:"aggregate_capacity_rps"`
			Nodes            []nodeJSON         `json:"nodes"`
			Points           []pointJSON        `json:"points"`
			FederatedSpeedup map[string]float64 `json:"federated_over_isolated_goodput"`
			Router           cluster.Snapshot   `json:"router"`
		}{"fetch", float64(kvLat) / 1e6, o.Quick, float64(deadline) / 1e6, aggregate, nj, points,
			map[string]float64{}, router.Stats()}
		for mult, ratio := range ratios {
			snap.FederatedSpeedup[fmt.Sprintf("%gx", mult)] = ratio
		}
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(o.SnapshotPath, append(data, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("continuum snapshot: %w", err)
		}
		o.logf("continuum: wrote %s", o.SnapshotPath)
	}
	return []*Table{tbl}, nil
}

// startContinuumNode brings up one continuum node: a runtime with the given
// scheduler cores and admission window, the latent KV backend, and the
// fetch module registered, served on an ephemeral listener.
func startContinuumNode(workers int, acfg *admission.Config, kv abi.KVStore) (*core.Runtime, string, error) {
	rt := core.New(core.Config{Workers: workers, Admission: acfg, KV: kv})
	cm, err := apps.FetchApp.Compile(rt.EngineConfig())
	if err != nil {
		rt.Close()
		return nil, "", err
	}
	if _, err := rt.RegisterCompiled("fetch", cm, "main", ""); err != nil {
		rt.Close()
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rt.Close()
		return nil, "", err
	}
	go rt.Serve(ln)
	return rt, "http://" + ln.Addr().String(), nil
}

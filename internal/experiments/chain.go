package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"sledge/internal/core"
	"sledge/internal/loadgen"
	"sledge/internal/stats"
	"sledge/internal/workloads/apps"
)

// The function-composition benchmark drives the image chain
// resize -> rgb2gray -> lpd through the same runtime two ways:
//
//   - http-selfcall: the pre-composition architecture. The client invokes
//     stage 1 over HTTP, receives the reply, and POSTs it to stage 2, then
//     stage 3. The entry connection is kept alive (a client would), but the
//     internal hops open a fresh connection per call: a stateless sandbox
//     cannot carry a pooled client between invocations, so each self-call
//     pays connection setup plus two full HTTP serializations of the
//     intermediate frame.
//   - pipeline: the registered chain at POST /p/imgchain. One request, one
//     admission ticket; co-located stages hand intermediate frames through
//     shared linear-memory buffers (sledge.output regions consumed
//     zero-copy, or the in-memory response buffer), never touching a
//     socket.
//
// Both modes validate every reply against the native chain, and the
// benchmark asserts the two modes return bit-identical bytes and charge
// bit-identical per-stage gas before any timing begins. The acceptance
// statistic is the p50 speedup: pipeline must be >= 3x faster.
//
// `make bench-chain` regenerates BENCH_chain.json from this file.

type chainModeEntry struct {
	Mode          string  `json:"mode"`
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	P50NS         int64   `json:"p50_ns"`
	P90NS         int64   `json:"p90_ns"`
	P99NS         int64   `json:"p99_ns"`
	MeanNS        int64   `json:"mean_ns"`
	ThroughputRPS float64 `json:"throughput_rps"`
}

// chainSnapshot is the machine-readable BENCH_chain.json payload.
type chainSnapshot struct {
	Description string   `json:"description"`
	Go          string   `json:"go"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Quick       bool     `json:"quick"`
	Stages      []string `json:"stages"`
	FrameW      int      `json:"frame_w"`
	FrameH      int      `json:"frame_h"`
	Concurrency int      `json:"concurrency"`

	// Identity checks, asserted before timing: the pipeline reply must be
	// byte-identical to the HTTP self-call chain (and the native mirror),
	// and each stage must charge the same deterministic gas in both modes.
	OutputIdentical bool              `json:"output_identical"`
	GasIdentical    bool              `json:"gas_identical"`
	GasPerStage     map[string]uint64 `json:"gas_per_stage"`

	Modes []chainModeEntry `json:"modes"`
	// SpeedupP50 is selfcall-p50 / pipeline-p50, the acceptance statistic.
	SpeedupP50 float64 `json:"speedup_pipeline_vs_selfcall_p50"`

	// Handoff accounting from the pipeline's own counters over the load run.
	FastHandoffs     uint64 `json:"fast_handoffs"`
	BufferedHandoffs uint64 `json:"buffered_handoffs"`
	HandoffBytes     uint64 `json:"handoff_bytes"`

	Acceptance string `json:"acceptance"`
}

// RunChain measures the co-located pipeline fast path against the HTTP
// self-call baseline on the chain-of-3 image pipeline. With SnapshotPath set
// it writes BENCH_chain.json.
func RunChain(o Options) ([]*Table, error) {
	var snap chainSnapshot
	return runChain(o, &snap)
}

func runChain(o Options, snap *chainSnapshot) ([]*Table, error) {
	// The frame is deliberately small: composition targets fine-grained
	// function chains, where the per-hop overhead the fast path removes —
	// connection setup plus two HTTP serializations per intermediate frame —
	// dominates the stage compute. The compute kernels are the real apps at
	// thumbnail size; scaling the frame up just rediscovers that big enough
	// functions amortize any hop cost.
	frameW, frameH := 8, 8
	requests := 600
	conc := 4
	if o.Quick {
		frameW, frameH = 16, 16
		requests = 120
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 8 {
		workers = 8
	}

	snap.Description = "Function composition: chain-of-3 image pipeline (resize -> rgb2gray -> lpd), co-located zero-copy pipeline vs HTTP self-call baseline. make bench-chain"
	snap.Go = runtime.Version()
	snap.GOMAXPROCS = runtime.GOMAXPROCS(0)
	snap.Quick = o.Quick
	snap.Stages = apps.ChainStages
	snap.FrameW = frameW
	snap.FrameH = frameH
	snap.Concurrency = conc
	snap.Acceptance = "pipeline p50 >= 3x faster than HTTP self-call; replies and per-stage gas bit-identical between modes"

	rt := core.New(core.Config{Workers: workers})
	defer rt.Close()
	for _, name := range apps.ChainStages {
		app, ok := apps.Get(name)
		if !ok {
			return nil, fmt.Errorf("chain: unknown app %s", name)
		}
		cm, err := app.Compile(rt.EngineConfig())
		if err != nil {
			return nil, err
		}
		if _, err := rt.RegisterCompiled(name, cm, "main", ""); err != nil {
			return nil, err
		}
	}
	pipe, err := rt.RegisterPipeline("imgchain", apps.ChainStages...)
	if err != nil {
		return nil, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	go rt.Serve(ln)
	base := "http://" + ln.Addr().String()

	req := apps.ChainRequest(frameW, frameH)
	want := apps.ChainNative(req)

	// Clients: the entry hop keeps its connection alive in both modes; the
	// self-call baseline's internal hops cannot (a stateless sandbox holds
	// no client pool across invocations), so they redial per call.
	entryClient := &http.Client{Timeout: 30 * time.Second}
	hopClient := &http.Client{
		Timeout:   30 * time.Second,
		Transport: &http.Transport{DisableKeepAlives: true},
	}

	selfCall := func() ([]byte, error) {
		body := req
		for i, name := range apps.ChainStages {
			client := entryClient
			if i > 0 {
				client = hopClient
			}
			resp, err := client.Post(base+"/"+name, "application/octet-stream", bytes.NewReader(body))
			if err != nil {
				return nil, fmt.Errorf("self-call %s: %w", name, err)
			}
			out, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return nil, fmt.Errorf("self-call %s: %w", name, err)
			}
			if resp.StatusCode != 200 {
				return nil, fmt.Errorf("self-call %s: status %d", name, resp.StatusCode)
			}
			body = out
		}
		return body, nil
	}

	// ---- identity checks, before any timing ----
	stageGas := func() map[string]uint64 {
		out := make(map[string]uint64, len(apps.ChainStages))
		for _, name := range apps.ChainStages {
			if m, ok := rt.Lookup(name); ok {
				out[name] = m.Stats().Gas
			}
		}
		return out
	}
	gasDelta := func(before map[string]uint64) map[string]uint64 {
		after := stageGas()
		for name := range after {
			after[name] -= before[name]
		}
		return after
	}

	before := stageGas()
	selfReply, err := selfCall()
	if err != nil {
		return nil, err
	}
	selfGas := gasDelta(before)

	before = stageGas()
	pipeReply, err := rt.InvokePipeline("imgchain", req)
	if err != nil {
		return nil, err
	}
	pipeGas := gasDelta(before)

	snap.OutputIdentical = bytes.Equal(selfReply, pipeReply) && bytes.Equal(pipeReply, want)
	snap.GasIdentical = true
	snap.GasPerStage = pipeGas
	for _, name := range apps.ChainStages {
		if selfGas[name] != pipeGas[name] || pipeGas[name] == 0 {
			snap.GasIdentical = false
		}
	}
	if !snap.OutputIdentical {
		return nil, fmt.Errorf("chain: modes disagree: self-call %d bytes, pipeline %d bytes, native %d bytes",
			len(selfReply), len(pipeReply), len(want))
	}
	if !snap.GasIdentical {
		return nil, fmt.Errorf("chain: per-stage gas diverges: self-call %v, pipeline %v", selfGas, pipeGas)
	}
	o.logf("chain: identity ok (%d-byte reply, gas %v)", len(pipeReply), pipeGas)

	validate := func(body []byte) error {
		if !bytes.Equal(body, want) {
			return fmt.Errorf("reply %d bytes, want %d", len(body), len(want))
		}
		return nil
	}

	// ---- measured modes ----
	// Warm both paths (connections, instance pools) before timing.
	for i := 0; i < 8; i++ {
		if _, err := selfCall(); err != nil {
			return nil, err
		}
		if _, err := rt.InvokePipeline("imgchain", req); err != nil {
			return nil, err
		}
	}

	selfEntry, err := runChainSelfCall(selfCall, validate, conc, requests)
	if err != nil {
		return nil, err
	}
	snap.Modes = append(snap.Modes, selfEntry)
	o.logf("chain: http-selfcall p50=%v p99=%v (%.0f chains/s)",
		time.Duration(selfEntry.P50NS), time.Duration(selfEntry.P99NS), selfEntry.ThroughputRPS)

	handoffBase := pipe.Stats()
	res, err := loadgen.Run(loadgen.Options{
		URL:         base,
		Pipeline:    "imgchain",
		Concurrency: conc,
		Requests:    requests,
		Body:        req,
		Validate:    validate,
		Timeout:     30 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	pipeEntry := chainModeEntry{
		Mode:          "pipeline",
		Requests:      res.Summary.Count,
		Errors:        res.Errors,
		P50NS:         res.Summary.P50.Nanoseconds(),
		P90NS:         res.Summary.P90.Nanoseconds(),
		P99NS:         res.Summary.P99.Nanoseconds(),
		MeanNS:        res.Summary.Mean.Nanoseconds(),
		ThroughputRPS: res.ThroughputRPS,
	}
	snap.Modes = append(snap.Modes, pipeEntry)
	o.logf("chain: pipeline p50=%v p99=%v (%.0f chains/s)",
		time.Duration(pipeEntry.P50NS), time.Duration(pipeEntry.P99NS), pipeEntry.ThroughputRPS)

	handoffEnd := pipe.Stats()
	snap.FastHandoffs = handoffEnd.FastHandoffs - handoffBase.FastHandoffs
	snap.BufferedHandoffs = handoffEnd.BufferedHandoffs - handoffBase.BufferedHandoffs
	snap.HandoffBytes = handoffEnd.HandoffBytes - handoffBase.HandoffBytes

	if pipeEntry.P50NS > 0 {
		snap.SpeedupP50 = float64(selfEntry.P50NS) / float64(pipeEntry.P50NS)
	}

	if o.SnapshotPath != "" {
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(o.SnapshotPath, append(buf, '\n'), 0o644); err != nil {
			return nil, err
		}
		o.logf("chain: wrote %s", o.SnapshotPath)
	}

	tbl := &Table{
		ID: "chain",
		Title: fmt.Sprintf("Function composition: %v on a %dx%d frame, %d chains at concurrency %d",
			apps.ChainStages, frameW, frameH, requests, conc),
		Headers: []string{"mode", "p50", "p90", "p99", "mean", "chains/s", "vs selfcall (p50)"},
		Notes: []string{
			"http-selfcall POSTs each stage's reply to the next stage's route; internal hops redial per call (stateless sandboxes hold no client pool);",
			fmt.Sprintf("pipeline invokes POST /p/imgchain: %d fast (sledge.output zero-copy) + %d buffered handoffs, %d bytes never serialized;",
				snap.FastHandoffs, snap.BufferedHandoffs, snap.HandoffBytes),
			"replies and per-stage gas asserted bit-identical between modes before timing",
		},
	}
	for _, e := range snap.Modes {
		ratio := "-"
		if e.P50NS > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(selfEntry.P50NS)/float64(e.P50NS))
		}
		tbl.Rows = append(tbl.Rows, []string{
			e.Mode,
			time.Duration(e.P50NS).String(),
			time.Duration(e.P90NS).String(),
			time.Duration(e.P99NS).String(),
			time.Duration(e.MeanNS).String(),
			fmt.Sprintf("%.0f", e.ThroughputRPS),
			ratio,
		})
	}
	return []*Table{tbl}, nil
}

// runChainSelfCall closed-loops the HTTP self-call baseline: conc workers
// each drive whole chains, one at a time, until requests chains completed.
func runChainSelfCall(selfCall func() ([]byte, error), validate func([]byte) error, conc, requests int) (chainModeEntry, error) {
	var (
		mu     sync.Mutex
		lats   []time.Duration
		errs   int
		nextID int
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if nextID >= requests {
					mu.Unlock()
					return
				}
				nextID++
				mu.Unlock()
				t0 := time.Now()
				body, err := selfCall()
				lat := time.Since(t0)
				if err == nil {
					err = validate(body)
				}
				mu.Lock()
				if err != nil {
					errs++
				} else {
					lats = append(lats, lat)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if len(lats) == 0 {
		return chainModeEntry{}, fmt.Errorf("chain: self-call baseline produced no successful chains (%d errors)", errs)
	}
	sum := stats.Summarize(lats)
	return chainModeEntry{
		Mode:          "http-selfcall",
		Requests:      sum.Count,
		Errors:        errs,
		P50NS:         sum.P50.Nanoseconds(),
		P90NS:         sum.P90.Nanoseconds(),
		P99NS:         sum.P99.Nanoseconds(),
		MeanNS:        sum.Mean.Nanoseconds(),
		ThroughputRPS: float64(sum.Count) / elapsed.Seconds(),
	}, nil
}

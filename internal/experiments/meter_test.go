package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestMeterSmoke exercises the full bench-meter path on a kernel subset at
// quick sizes: both metering modes must run every workload to the correct
// checksum under preemptive slicing, gas must be bit-identical between
// modes (RunMeterAblation hard-fails otherwise), and the snapshot JSON must
// round-trip. The acceptance number (geomean speedup > 1.0 at full sizes)
// lives in BENCH_meter.json, produced by `make bench-meter`; quick-size
// kernels finish in microseconds, so scheduling noise swamps the ratio.
func TestMeterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("meter smoke skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "meter.json")
	tables, err := RunMeterAblation(Options{
		Quick:        true,
		KernelFilter: []string{"gemm", "jacobi-2d", "trisolv", "atax"},
		SnapshotPath: path,
	})
	if err != nil {
		t.Fatalf("meter ablation: %v", err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 4 {
		t.Fatalf("unexpected results: %+v", tables)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	var snap meterSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot decode: %v", err)
	}
	if len(snap.Polybench) != 4 {
		t.Fatalf("snapshot coverage: %d kernels", len(snap.Polybench))
	}
	for _, e := range snap.Polybench {
		if e.Gas == 0 {
			t.Errorf("%s: no gas charged", e.Name)
		}
		if e.ChargePoints == 0 || e.MaxBlockCost == 0 {
			t.Errorf("%s: cost analysis stats missing: %+v", e.Name, e)
		}
	}
	// Loose sanity floor only; the real floor (> 1.0) applies at full sizes.
	if snap.Geomean < 0.5 {
		t.Errorf("block metering catastrophically slower: geomean %.3f", snap.Geomean)
	}
	t.Logf("quick geomean: %.3fx", snap.Geomean)
}

package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"sledge/internal/engine"
	"sledge/internal/sandbox"
	"sledge/internal/sched"
	"sledge/internal/stats"
)

// schedModeEntry is one (worker count, distribution) cell of the scheduler
// scale-out benchmark.
type schedModeEntry struct {
	Mode          string  `json:"mode"`
	Requests      int     `json:"requests"`
	ThroughputRPS float64 `json:"throughput_rps"`
	FirstRunP50NS int64   `json:"submit_to_first_quantum_p50_ns"`
	FirstRunP99NS int64   `json:"submit_to_first_quantum_p99_ns"`
	Steals        uint64  `json:"steals"`
	StealBatches  uint64  `json:"steal_batches"`
}

type schedWorkerEntry struct {
	Workers int              `json:"workers"`
	Modes   []schedModeEntry `json:"modes"`
}

// schedSnapshot is the machine-readable BENCH_sched.json payload.
type schedSnapshot struct {
	Description string             `json:"description"`
	Go          string             `json:"go"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Quick       bool               `json:"quick"`
	Sweep       []schedWorkerEntry `json:"sweep"`
	Acceptance  string             `json:"acceptance"`
}

// schedBenchDists is the distribution sweep: the per-worker topology
// against the paper's original single global deque (with its dispatcher
// hop), the mutex global queue, and static assignment.
var schedBenchDists = []sched.Distribution{
	sched.DistWorkStealing, sched.DistGlobalDeque, sched.DistGlobalLock, sched.DistStatic,
}

// RunSchedBench measures the scheduler's request path across worker counts
// and distribution mechanisms: closed-loop drivers submit tiny functions,
// so per-request scheduling overhead — the submit hop, wakeup latency, and
// queue handoff — dominates the measurement. Reported per cell: throughput
// and the submit→first-quantum latency distribution. With SnapshotPath set
// it writes BENCH_sched.json.
func RunSchedBench(o Options) ([]*Table, error) {
	requests := 4000
	workerCounts := []int{1, 2, 4, 8}
	if o.Quick {
		requests = 300
		workerCounts = []int{1, 2}
	}
	cm, err := compileSpin(engine.Config{})
	if err != nil {
		return nil, err
	}
	snap := schedSnapshot{
		Description: "Scheduler scale-out sweep: closed-loop tiny requests per (workers × distribution); throughput and submit→first-quantum latency isolate the per-request dispatch overhead. make bench-sched",
		Go:          runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Quick:       o.Quick,
		Acceptance:  "at workers >= 4: work-stealing (per-worker deques, direct submit, targeted wakeups) beats global-deque (dispatcher goroutine + channel hop) on throughput and submit->first-quantum p99",
	}
	tbl := &Table{
		ID:      "sched",
		Title:   fmt.Sprintf("Scheduler scale-out: %d closed-loop requests per cell (GOMAXPROCS=%d)", requests, snap.GOMAXPROCS),
		Headers: []string{"workers", "mechanism", "req/s", "first-quantum p50", "first-quantum p99", "steals"},
		Notes: []string{
			"work-stealing submits straight into the least-loaded worker's inbox and wakes that worker;",
			"global-deque routes every request through the dispatcher goroutine and its channel (the retired design)",
		},
	}
	for _, workers := range workerCounts {
		we := schedWorkerEntry{Workers: workers}
		for _, dist := range schedBenchDists {
			entry, err := runSchedCell(cm, workers, dist, requests)
			if err != nil {
				return nil, err
			}
			we.Modes = append(we.Modes, entry)
			tbl.Rows = append(tbl.Rows, []string{
				fmt.Sprint(workers), entry.Mode,
				fmt.Sprintf("%.0f", entry.ThroughputRPS),
				time.Duration(entry.FirstRunP50NS).String(),
				time.Duration(entry.FirstRunP99NS).String(),
				fmt.Sprint(entry.Steals),
			})
			o.logf("sched: workers=%d %s %.0f req/s p99=%v", workers, entry.Mode,
				entry.ThroughputRPS, time.Duration(entry.FirstRunP99NS))
		}
		snap.Sweep = append(snap.Sweep, we)
	}
	if o.SnapshotPath != "" {
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(o.SnapshotPath, append(buf, '\n'), 0o644); err != nil {
			return nil, err
		}
		o.logf("sched: wrote %s", o.SnapshotPath)
	}
	return []*Table{tbl}, nil
}

// runSchedCell drives one (workers, distribution) configuration: `workers`
// closed-loop driver goroutines, each submitting a tiny request and
// waiting for it, so the pool is busy but never deeply backlogged — the
// regime where dispatch overhead and wakeup latency are visible.
func runSchedCell(cm *engine.CompiledModule, workers int, dist sched.Distribution, requests int) (schedModeEntry, error) {
	pool := sched.NewPool(sched.Config{Workers: workers, Distribution: dist})
	defer pool.Stop()

	perDriver := requests / workers
	lats := make([][]time.Duration, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for d := 0; d < workers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			done := make(chan *sandbox.Sandbox, 1)
			lat := make([]time.Duration, 0, perDriver)
			for i := 0; i < perDriver; i++ {
				sb, err := sandbox.New(cm, make([]byte, 1), sandbox.Options{})
				if err != nil {
					errs[d] = err
					return
				}
				sb.OnComplete = func(s *sandbox.Sandbox) { done <- s }
				submitAt := time.Now()
				if err := pool.Submit(sb); err != nil {
					errs[d] = err
					return
				}
				s := <-done
				lat = append(lat, s.FirstRunAt.Sub(submitAt))
			}
			lats[d] = lat
		}(d)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return schedModeEntry{}, err
		}
	}
	all := make([]time.Duration, 0, requests)
	for _, l := range lats {
		all = append(all, l...)
	}
	s := stats.Summarize(all)
	st := pool.Stats()
	return schedModeEntry{
		Mode:          dist.String(),
		Requests:      len(all),
		ThroughputRPS: float64(len(all)) / elapsed.Seconds(),
		FirstRunP50NS: int64(s.P50),
		FirstRunP99NS: int64(s.P99),
		Steals:        st.Steals,
		StealBatches:  st.StealBatches,
	}, nil
}

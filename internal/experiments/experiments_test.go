package experiments

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"

	"sledge/internal/nuclio"
)

// TestMain lets the re-executed test binary serve as a nuclio worker for
// the serverless experiments.
func TestMain(m *testing.M) {
	if nuclio.MaybeWorkerMain() {
		return
	}
	os.Exit(m.Run())
}

// TestAllExperimentsQuick runs every registered experiment in quick mode:
// this is the end-to-end check that each paper table/figure can actually be
// regenerated.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	for _, id := range IDs() {
		if id == "table1" {
			continue // produced together with fig5
		}
		id := id
		t.Run(id, func(t *testing.T) {
			tables, err := Registry[id](Options{Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", id)
			}
			for _, tbl := range tables {
				if len(tbl.Rows) == 0 {
					t.Errorf("%s/%s has no rows", id, tbl.ID)
				}
				var buf bytes.Buffer
				tbl.Render(&buf)
				if !strings.Contains(buf.String(), tbl.Title) {
					t.Errorf("%s render missing title", tbl.ID)
				}
				t.Logf("\n%s", buf.String())
			}
		})
	}
}

// TestFig5OrderingShape asserts the paper's qualitative result on the quick
// configuration: the guard-based Sledge configuration must be the fastest
// checked configuration, software checks cost more than guard, and the
// naive (Cranelift-class) tier costs more than the optimized tier.
func TestFig5OrderingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 shape check skipped in -short mode")
	}
	// Medium problem sizes on a kernel subset: quick-mode sizes are too
	// noisy for ordering assertions.
	tables, err := runFig5Table1(Options{
		KernelFilter: []string{"gemm", "jacobi-2d", "trisolv", "floyd-warshall"},
	})
	if err != nil {
		t.Fatalf("fig5: %v", err)
	}
	table1 := tables[1]
	am := map[string]float64{}
	for _, row := range table1.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[1], "x"), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", row[1], err)
		}
		am[row[0]] = v
	}
	assertLess := func(a, b string, slack float64) {
		t.Helper()
		if am[a]*slack >= am[b] {
			t.Errorf("expected %s (%.2f) faster than %s (%.2f) beyond slack %.2f",
				a, am[a], b, am[b], slack)
		}
	}
	// The paper's robust orderings. Tier-level gaps (2-3x) are asserted
	// strictly; the guard-vs-software-check gap is a few percent on this
	// engine and gets jitter slack on a shared single vCPU (slack < 1
	// tolerates b measuring up to (1-slack) faster than a).
	assertLess("Sledge+aWsm", "Sledge+aWsm-bounds-chk", 0.90)
	assertLess("Sledge+aWsm", "Sledge+aWsm-mpx", 0.95)
	assertLess("Sledge+aWsm", "Lucet-class", 1.1)
	assertLess("Sledge+aWsm", "Wasmer-class", 1.2)
	assertLess("WAVM-class", "Wasmer-class", 1.2)
	assertLess("Lucet-class", "Wasmer-class", 1.05)
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:      "x",
		Title:   "demo",
		Headers: []string{"a", "bbbb"},
		Rows:    [][]string{{"longvalue", "1"}, {"s", "22"}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "longvalue", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestIDsCoverRegistry(t *testing.T) {
	for _, id := range IDs() {
		if _, ok := Registry[id]; !ok {
			t.Errorf("id %s missing from registry", id)
		}
	}
}

package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sort"
	"time"

	"sledge/internal/abi"
	"sledge/internal/core"
	"sledge/internal/engine"
	"sledge/internal/loadgen"
	"sledge/internal/wasm"
)

// The warm-start benchmark has two halves:
//
//  1. First invoke — an init-heavy module (a start function that writes
//     every byte of linear memory) instantiated cold, with and without the
//     post-init snapshot. Replay pays the start function on every
//     instantiation; the snapshot path memcpys the captured image and
//     credits the recorded gas. The acceptance number is the p50 speedup:
//     snapshot must be >= 5x faster than replay.
//  2. Fleet economics — a 10k-module registration storm followed by
//     open-loop Zipf(1.3) HTTP traffic, once against an unbounded registry
//     and once under a CacheBudgetBytes a quarter of the fleet's resident
//     footprint. The bounded run must hold goodput >= 0.9x the unbounded
//     run while the ARC controller demotes the cold tail (purged pools,
//     dropped snapshots, dropped bodies + lazy recompile), with heap-in-use
//     sampled through the run to show RSS holds steady at the budget.
//
// `make bench-warm` regenerates BENCH_warm.json from this file.

type warmFirstInvokeEntry struct {
	Mode   string `json:"mode"`
	P50NS  int64  `json:"p50_ns"`
	MeanNS int64  `json:"mean_ns"`
}

type warmFirstInvokeSection struct {
	InitBytes     int                    `json:"init_bytes"`
	SnapshotBytes int64                  `json:"snapshot_bytes"`
	Samples       int                    `json:"samples"`
	Modes         []warmFirstInvokeEntry `json:"modes"`
	// SpeedupP50 is replay-p50 / snapshot-p50, the acceptance statistic.
	SpeedupP50 float64 `json:"speedup_snapshot_vs_replay_p50"`
}

type warmFleetEntry struct {
	Mode             string  `json:"mode"`
	BudgetBytes      int64   `json:"budget_bytes"`
	RegisterTotalNS  int64   `json:"register_total_ns"`
	RegisterPerModNS int64   `json:"register_per_module_ns"`
	Issued           int     `json:"issued"`
	Errors           int     `json:"errors"`
	GoodputRPS       float64 `json:"goodput_rps"`
	P50NS            int64   `json:"p50_ns"`
	P99NS            int64   `json:"p99_ns"`
	// Heap-in-use samples taken through the load run, and the steady-state
	// ratio mean(last third)/mean(middle third): ~1.0 means RSS held flat.
	HeapSamples    []int64 `json:"heap_inuse_samples"`
	HeapPeakBytes  int64   `json:"heap_peak_bytes"`
	HeapEndBytes   int64   `json:"heap_end_bytes"`
	SteadyRSSRatio float64 `json:"steady_rss_ratio"`
	// Cache is nil for the unbounded mode.
	Cache *core.CacheSnapshot `json:"cache,omitempty"`
}

type warmFleetSection struct {
	Modules     int              `json:"modules"`
	ZipfS       float64          `json:"zipf_s"`
	RatePerSec  float64          `json:"rate_per_sec"`
	DurationMS  int64            `json:"duration_ms"`
	Workers     int              `json:"workers"`
	PerModBytes int64            `json:"per_module_resident_bytes"`
	Modes       []warmFleetEntry `json:"modes"`
	// GoodputRatio is budgeted/unbounded, the acceptance statistic.
	GoodputRatio float64 `json:"goodput_ratio_budgeted_vs_unbounded"`
}

// warmSnapshot is the machine-readable BENCH_warm.json payload.
type warmSnapshot struct {
	Description string                 `json:"description"`
	Go          string                 `json:"go"`
	GOMAXPROCS  int                    `json:"gomaxprocs"`
	Quick       bool                   `json:"quick"`
	FirstInvoke warmFirstInvokeSection `json:"first_invoke"`
	Fleet       warmFleetSection       `json:"fleet_economics"`
	Acceptance  string                 `json:"acceptance"`
}

// warmInitModule builds the init-heavy module for the first-invoke half: a
// start function that writes every byte of an initBytes linear memory (the
// interpreter-rendered analogue of a language runtime initializing its
// heap), then plants an i32 marker and a global the exported entry reads
// back. WCC never emits start sections, so the module is built directly in
// the IR.
func warmInitModule(initBytes int) (*wasm.Module, error) {
	pages := uint32(initBytes / wasm.PageSize)
	m := wasm.NewModule()
	m.Types = []wasm.FuncType{
		{},
		{Results: []wasm.ValType{wasm.ValI32}},
	}
	m.Memories = []wasm.Limits{{Min: pages, Max: pages, HasMax: true}}
	m.Globals = []wasm.Global{{
		Type: wasm.GlobalType{Type: wasm.ValI32, Mutable: true},
		Init: wasm.Instr{Op: wasm.OpI32Const, Imm: 0},
	}}
	m.Funcs = []wasm.Func{
		{TypeIdx: 0, Locals: []wasm.ValType{wasm.ValI32}, Body: []wasm.Instr{
			// for (i = 0; i < initBytes; i++) mem8[i] = i*31
			{Op: wasm.OpBlock, Imm: uint64(wasm.BlockTypeEmpty)},
			{Op: wasm.OpLoop, Imm: uint64(wasm.BlockTypeEmpty)},
			{Op: wasm.OpLocalGet, Imm: 0},
			{Op: wasm.OpI32Const, Imm: uint64(initBytes)},
			{Op: wasm.OpI32GeU},
			{Op: wasm.OpBrIf, Imm: 1},
			{Op: wasm.OpLocalGet, Imm: 0},
			{Op: wasm.OpLocalGet, Imm: 0},
			{Op: wasm.OpI32Const, Imm: 31},
			{Op: wasm.OpI32Mul},
			{Op: wasm.OpI32Store8},
			{Op: wasm.OpLocalGet, Imm: 0},
			{Op: wasm.OpI32Const, Imm: 1},
			{Op: wasm.OpI32Add},
			{Op: wasm.OpLocalSet, Imm: 0},
			{Op: wasm.OpBr, Imm: 0},
			{Op: wasm.OpEnd},
			{Op: wasm.OpEnd},
			// mem[16] = 0x5EDC; global = initBytes
			{Op: wasm.OpI32Const, Imm: 16},
			{Op: wasm.OpI32Const, Imm: 0x5EDC},
			{Op: wasm.OpI32Store, Imm2: 2},
			{Op: wasm.OpI32Const, Imm: uint64(initBytes)},
			{Op: wasm.OpGlobalSet, Imm: 0},
		}, Name: "boot"},
		{TypeIdx: 1, Body: []wasm.Instr{
			{Op: wasm.OpI32Const, Imm: 16},
			{Op: wasm.OpI32Load, Imm2: 2},
			{Op: wasm.OpGlobalGet, Imm: 0},
			{Op: wasm.OpI32Add},
		}, Name: "main"},
	}
	m.Exports = []wasm.Export{{Name: "main", Kind: wasm.ExternFunc, Index: 1}}
	m.Start = 0
	if err := wasm.Validate(m); err != nil {
		return nil, fmt.Errorf("warm: init module invalid: %w", err)
	}
	return m, nil
}

// warmFleetModuleBin builds the fleet workload: the same shape as the Zipf
// compute module (sys_read, table lookup, sys_write) but with the table
// fill moved into a start section, so every one of the fleet's modules
// carries a post-init snapshot and the cache's full demotion ladder —
// purge pools, drop snapshot, drop body — is exercised at fleet scale.
func warmFleetModuleBin() ([]byte, error) {
	const tblBase, tblLen = 1024, 4096
	m := wasm.NewModule()
	m.Types = []wasm.FuncType{
		{Params: []wasm.ValType{wasm.ValI32, wasm.ValI32}, Results: []wasm.ValType{wasm.ValI32}},
		{},
		{Results: []wasm.ValType{wasm.ValI32}},
	}
	m.Imports = []wasm.Import{
		{Module: "sledge", Name: "read", Kind: wasm.ExternFunc, TypeIdx: 0},
		{Module: "sledge", Name: "write", Kind: wasm.ExternFunc, TypeIdx: 0},
	}
	m.Memories = []wasm.Limits{{Min: 1, Max: 1, HasMax: true}}
	m.Globals = []wasm.Global{{
		Type: wasm.GlobalType{Type: wasm.ValI32, Mutable: true},
		Init: wasm.Instr{Op: wasm.OpI32Const, Imm: 0},
	}}
	m.Funcs = []wasm.Func{
		// boot (func index 2, after the two imports): fill the lookup table,
		// record its length in the global. Host-free, so the snapshot probe
		// captures it.
		{TypeIdx: 1, Locals: []wasm.ValType{wasm.ValI32}, Body: []wasm.Instr{
			{Op: wasm.OpBlock, Imm: uint64(wasm.BlockTypeEmpty)},
			{Op: wasm.OpLoop, Imm: uint64(wasm.BlockTypeEmpty)},
			{Op: wasm.OpLocalGet, Imm: 0},
			{Op: wasm.OpI32Const, Imm: tblLen},
			{Op: wasm.OpI32GeU},
			{Op: wasm.OpBrIf, Imm: 1},
			{Op: wasm.OpLocalGet, Imm: 0},
			{Op: wasm.OpI32Const, Imm: tblBase},
			{Op: wasm.OpI32Add},
			{Op: wasm.OpLocalGet, Imm: 0},
			{Op: wasm.OpI32Const, Imm: 7},
			{Op: wasm.OpI32Mul},
			{Op: wasm.OpI32Const, Imm: 3},
			{Op: wasm.OpI32Add},
			{Op: wasm.OpI32Store8},
			{Op: wasm.OpLocalGet, Imm: 0},
			{Op: wasm.OpI32Const, Imm: 1},
			{Op: wasm.OpI32Add},
			{Op: wasm.OpLocalSet, Imm: 0},
			{Op: wasm.OpBr, Imm: 0},
			{Op: wasm.OpEnd},
			{Op: wasm.OpEnd},
			{Op: wasm.OpI32Const, Imm: tblLen},
			{Op: wasm.OpGlobalSet, Imm: 0},
		}, Name: "boot"},
		// main (func index 3): read the request byte, answer with the table
		// byte it indexes (plus the global, proving post-init state survived
		// whatever warm path served the request).
		{TypeIdx: 2, Body: []wasm.Instr{
			{Op: wasm.OpI32Const, Imm: 0},
			{Op: wasm.OpI32Const, Imm: 8},
			{Op: wasm.OpCall, Imm: 0}, // sys_read
			{Op: wasm.OpDrop},
			{Op: wasm.OpI32Const, Imm: 0}, // store address for the reply
			{Op: wasm.OpI32Const, Imm: 0},
			{Op: wasm.OpI32Load8U},
			{Op: wasm.OpI32Const, Imm: 13},
			{Op: wasm.OpI32Mul},
			{Op: wasm.OpI32Const, Imm: tblLen - 1},
			{Op: wasm.OpI32And},
			{Op: wasm.OpI32Const, Imm: tblBase},
			{Op: wasm.OpI32Add},
			{Op: wasm.OpI32Load8U},
			{Op: wasm.OpGlobalGet, Imm: 0},
			{Op: wasm.OpI32Add},
			{Op: wasm.OpI32Store8},
			{Op: wasm.OpI32Const, Imm: 0},
			{Op: wasm.OpI32Const, Imm: 1},
			{Op: wasm.OpCall, Imm: 1}, // sys_write
			{Op: wasm.OpDrop},
			{Op: wasm.OpI32Const, Imm: 0},
		}, Name: "main"},
	}
	m.Exports = []wasm.Export{{Name: "main", Kind: wasm.ExternFunc, Index: 3}}
	m.Start = 2
	if err := wasm.Validate(m); err != nil {
		return nil, fmt.Errorf("warm: fleet module invalid: %w", err)
	}
	return wasm.Encode(m)
}

// RunWarm measures warm starts: post-init snapshot first-invoke latency
// against start-function replay, and fleet-scale goodput under a bounded
// module cache. With SnapshotPath set it writes BENCH_warm.json.
func RunWarm(o Options) ([]*Table, error) {
	var snap warmSnapshot
	return runWarm(o, &snap)
}

func runWarm(o Options, snap *warmSnapshot) ([]*Table, error) {
	initBytes := 2 * wasm.PageSize
	samples := 60
	fleetM := 10000
	rate := 4000.0
	dur := 3 * time.Second
	if o.Quick {
		initBytes = wasm.PageSize
		samples = 12
		fleetM = 400
		rate = 1200
		dur = 600 * time.Millisecond
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 8 {
		workers = 8
	}

	snap.Description = "Warm starts: post-init snapshot vs start-function replay on first invoke, and a bounded ARC module cache holding fleet goodput under a fixed RSS budget. make bench-warm"
	snap.Go = runtime.Version()
	snap.GOMAXPROCS = runtime.GOMAXPROCS(0)
	snap.Quick = o.Quick
	snap.Acceptance = "first invoke from snapshot >= 5x faster (p50) than replay; budgeted fleet goodput >= 0.9x unbounded with steady RSS"

	firstTbl, err := runWarmFirstInvoke(o, initBytes, samples, &snap.FirstInvoke)
	if err != nil {
		return nil, err
	}
	fleetTbl, err := runWarmFleet(o, fleetM, workers, rate, dur, &snap.Fleet)
	if err != nil {
		return nil, err
	}

	if o.SnapshotPath != "" {
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(o.SnapshotPath, append(buf, '\n'), 0o644); err != nil {
			return nil, err
		}
		o.logf("warm: wrote %s", o.SnapshotPath)
	}
	return []*Table{firstTbl, fleetTbl}, nil
}

// runWarmFirstInvoke times cold instantiation (Instantiate+Start+Run) of
// the init-heavy module with the snapshot on and off, plus the pooled
// steady state for context. Results and gas must be bit-identical across
// all three paths — a fidelity check baked into the benchmark itself.
func runWarmFirstInvoke(o Options, initBytes, samples int, out *warmFirstInvokeSection) (*Table, error) {
	m, err := warmInitModule(initBytes)
	if err != nil {
		return nil, err
	}
	base := engine.Config{Tier: engine.TierOptimized, Bounds: engine.BoundsGuard}
	replayCfg := base
	replayCfg.NoSnapshot = true

	snapCM, err := engine.Compile(m, nil, base)
	if err != nil {
		return nil, fmt.Errorf("warm: compile (snapshot): %w", err)
	}
	replayCM, err := engine.Compile(m, nil, replayCfg)
	if err != nil {
		return nil, fmt.Errorf("warm: compile (replay): %w", err)
	}
	if snapCM.SnapshotBytes() == 0 {
		return nil, fmt.Errorf("warm: init module did not snapshot")
	}
	out.InitBytes = initBytes
	out.SnapshotBytes = snapCM.SnapshotBytes()
	out.Samples = samples

	wantResult := uint64(0x5EDC + initBytes)
	runOnce := func(in *engine.Instance) (uint64, uint64, error) {
		if err := in.Start("main"); err != nil {
			return 0, 0, err
		}
		st, err := in.Run(1 << 40)
		if st != engine.StatusDone {
			return 0, 0, fmt.Errorf("status %v: %v", st, err)
		}
		v, _ := in.Result()
		return v, in.Gas, nil
	}

	var refGas uint64
	measure := func(mode string, next func() *engine.Instance, done func(*engine.Instance)) (warmFirstInvokeEntry, error) {
		lats := make([]time.Duration, samples)
		for i := range lats {
			t0 := time.Now()
			in := next()
			v, gas, err := runOnce(in)
			lats[i] = time.Since(t0)
			if err != nil {
				return warmFirstInvokeEntry{}, fmt.Errorf("warm %s: %w", mode, err)
			}
			if v != wantResult {
				return warmFirstInvokeEntry{}, fmt.Errorf("warm %s: result %#x, want %#x", mode, v, wantResult)
			}
			if refGas == 0 {
				refGas = gas
			} else if gas != refGas {
				return warmFirstInvokeEntry{}, fmt.Errorf("warm %s: gas %d diverges from %d", mode, gas, refGas)
			}
			if done != nil {
				done(in)
			}
		}
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		return warmFirstInvokeEntry{
			Mode:   mode,
			P50NS:  lats[len(lats)/2].Nanoseconds(),
			MeanNS: (sum / time.Duration(len(lats))).Nanoseconds(),
		}, nil
	}

	replayEntry, err := measure("replay", replayCM.Instantiate, nil)
	if err != nil {
		return nil, err
	}
	snapEntry, err := measure("snapshot", snapCM.Instantiate, nil)
	if err != nil {
		return nil, err
	}
	// Pooled steady state: recycled instance, reset against the snapshot
	// image. Warm the pool first so every sample takes the Acquire hit path.
	for i := 0; i < 4; i++ {
		in := snapCM.Acquire()
		if _, _, err := runOnce(in); err != nil {
			return nil, fmt.Errorf("warm pooled warmup: %w", err)
		}
		snapCM.Release(in)
	}
	pooledEntry, err := measure("snapshot+pool", snapCM.Acquire, snapCM.Release)
	if err != nil {
		return nil, err
	}

	out.Modes = []warmFirstInvokeEntry{replayEntry, snapEntry, pooledEntry}
	if snapEntry.P50NS > 0 {
		out.SpeedupP50 = float64(replayEntry.P50NS) / float64(snapEntry.P50NS)
	}

	tbl := &Table{
		ID: "warm-first-invoke",
		Title: fmt.Sprintf("First invoke: %d KiB init in start section, %d samples",
			initBytes/1024, samples),
		Headers: []string{"mode", "p50", "mean", "vs replay (p50)"},
		Notes: []string{
			"replay re-runs the start function on every instantiation (NoSnapshot);",
			fmt.Sprintf("snapshot materializes the %d-byte post-init image and credits the recorded gas;", out.SnapshotBytes),
			"snapshot+pool is the steady-state request path (recycled instance, snapshot-diff reset);",
			"results and charged gas are asserted bit-identical across all three paths",
		},
	}
	for _, e := range out.Modes {
		ratio := "-"
		if e.P50NS > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(replayEntry.P50NS)/float64(e.P50NS))
		}
		tbl.Rows = append(tbl.Rows, []string{
			e.Mode,
			time.Duration(e.P50NS).String(),
			time.Duration(e.MeanNS).String(),
			ratio,
		})
		o.logf("warm first-invoke: %s p50=%v mean=%v", e.Mode,
			time.Duration(e.P50NS), time.Duration(e.MeanNS))
	}
	return tbl, nil
}

// runWarmFleet registers fleetM snapshotted modules and drives open-loop
// Zipf(1.3) traffic over HTTP, unbounded and then under a budget a quarter
// of the fleet's resident footprint, sampling heap-in-use through the run.
func runWarmFleet(o Options, fleetM, workers int, rate float64, dur time.Duration, out *warmFleetSection) (*Table, error) {
	bin, err := warmFleetModuleBin()
	if err != nil {
		return nil, err
	}
	// Per-module resident footprint (code + snapshot, no pools yet) from a
	// probe compile, used to size the budget relative to the fleet.
	probe, err := engine.CompileBinary(bin, abi.Registry(), engine.Config{Tier: engine.TierOptimized, Bounds: engine.BoundsGuard})
	if err != nil {
		return nil, fmt.Errorf("warm fleet: probe compile: %w", err)
	}
	perMod := probe.ResidentBytes()
	if probe.SnapshotBytes() == 0 {
		return nil, fmt.Errorf("warm fleet: module did not snapshot")
	}
	budget := int64(fleetM) * perMod / 4

	const zipfS = 1.3
	out.Modules = fleetM
	out.ZipfS = zipfS
	out.RatePerSec = rate
	out.DurationMS = dur.Milliseconds()
	out.Workers = workers
	out.PerModBytes = perMod

	// One shared Zipf rank schedule: both modes see the identical arrival
	// sequence, so the goodput ratio isolates the cache, not the draw.
	sched := make([]int, 1<<16)
	zipf := rand.NewZipf(rand.New(rand.NewSource(17)), zipfS, 1, uint64(fleetM-1))
	for i := range sched {
		sched[i] = int(zipf.Uint64())
	}
	payload := []byte{9, 0, 0, 0, 0, 0, 0, 0}

	modes := []struct {
		Name   string
		Budget int64
	}{
		{"unbounded", 0},
		{"budgeted", budget},
	}
	tbl := &Table{
		ID: "warm-fleet",
		Title: fmt.Sprintf("Fleet economics: %d snapshotted modules, open-loop Zipf(s=%.1f) at %.0f req/s for %v",
			fleetM, zipfS, rate, dur),
		Headers: []string{"mode", "budget", "register", "goodput req/s", "p50", "p99",
			"heap peak", "steady rss", "pool purges", "snap drops", "body drops", "recompiles"},
		Notes: []string{
			fmt.Sprintf("budget = fleet resident footprint / 4 (%d modules x %d B); both modes replay the identical Zipf arrival order;", fleetM, perMod),
			"steady rss is mean heap-in-use over the run's last third vs its middle third (~1.0 = flat);",
			"every 200 response is validated against the module's reference reply, so a demotion or revive that corrupted state fails the run",
		},
	}

	for _, mode := range modes {
		entry, err := runWarmFleetMode(o, bin, fleetM, workers, rate, dur, mode.Budget, sched, payload)
		if err != nil {
			return nil, fmt.Errorf("warm fleet %s: %w", mode.Name, err)
		}
		entry.Mode = mode.Name
		out.Modes = append(out.Modes, entry)
		o.logf("warm fleet: %s goodput=%.0f req/s p99=%v heap-peak=%dMB",
			mode.Name, entry.GoodputRPS, time.Duration(entry.P99NS), entry.HeapPeakBytes>>20)
		// Let the previous mode's fleet actually die before the next heap
		// samples are taken.
		runtime.GC()
	}
	if g := out.Modes[0].GoodputRPS; g > 0 {
		out.GoodputRatio = out.Modes[1].GoodputRPS / g
	}

	for _, e := range out.Modes {
		budgetCell := "unbounded"
		if e.BudgetBytes >= 1<<20 {
			budgetCell = fmt.Sprintf("%dMB", e.BudgetBytes>>20)
		} else if e.BudgetBytes > 0 {
			budgetCell = fmt.Sprintf("%dKB", e.BudgetBytes>>10)
		}
		var purges, snaps, bodies, recompiles uint64
		if e.Cache != nil {
			purges, snaps = e.Cache.PurgedIdle, e.Cache.DroppedSnapshots
			bodies, recompiles = e.Cache.DroppedBodies, e.Cache.ColdRecompiles
		}
		tbl.Rows = append(tbl.Rows, []string{
			e.Mode, budgetCell,
			time.Duration(e.RegisterTotalNS).String(),
			fmt.Sprintf("%.0f", e.GoodputRPS),
			time.Duration(e.P50NS).String(),
			time.Duration(e.P99NS).String(),
			fmt.Sprintf("%dMB", e.HeapPeakBytes>>20),
			fmt.Sprintf("%.2f", e.SteadyRSSRatio),
			fmt.Sprint(purges), fmt.Sprint(snaps),
			fmt.Sprint(bodies), fmt.Sprint(recompiles),
		})
	}
	return tbl, nil
}

func runWarmFleetMode(o Options, bin []byte, fleetM, workers int, rate float64,
	dur time.Duration, budget int64, sched []int, payload []byte) (warmFleetEntry, error) {
	entry := warmFleetEntry{BudgetBytes: budget}
	rt := core.New(core.Config{
		Workers:           workers,
		CacheBudgetBytes:  budget,
		CacheScanInterval: 5 * time.Millisecond,
	})
	defer rt.Close()

	names := make([]string, fleetM)
	regStart := time.Now()
	for i := range names {
		names[i] = fmt.Sprintf("w%05d", i)
		if _, err := rt.RegisterWasm(names[i], bin, "main"); err != nil {
			return entry, fmt.Errorf("register %s: %w", names[i], err)
		}
	}
	entry.RegisterTotalNS = time.Since(regStart).Nanoseconds()
	entry.RegisterPerModNS = entry.RegisterTotalNS / int64(fleetM)

	// Reference reply: every module is the same program, so one invoke pins
	// the expected byte for the whole fleet.
	want, err := rt.Invoke(names[0], payload)
	if err != nil {
		return entry, fmt.Errorf("reference invoke: %w", err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return entry, err
	}
	defer ln.Close()
	go rt.Serve(ln)
	base := "http://" + ln.Addr().String() + "/"
	targetFn := func(i int) string { return base + names[sched[i%len(sched)]] }
	validate := func(body []byte) error {
		if !bytes.Equal(body, want) {
			return fmt.Errorf("reply %x, want %x", body, want)
		}
		return nil
	}

	// Settle the registration storm's garbage, then warm both the HTTP path
	// and the hot set before measuring, so neither mode's goodput is taxed
	// by the storm's GC debt or cold connections.
	runtime.GC()
	if _, err := loadgen.Run(loadgen.Options{
		TargetFn: targetFn, Body: payload, Validate: validate,
		Rate: rate / 2, Duration: dur / 3, MaxOutstanding: 256, Timeout: 10 * time.Second,
	}); err != nil {
		return entry, fmt.Errorf("warmup: %w", err)
	}

	// Heap sampler: heap-in-use every 20ms for the duration of the load run.
	samplerDone := make(chan struct{})
	samplerStop := make(chan struct{})
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-samplerStop:
				return
			case <-tick.C:
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				entry.HeapSamples = append(entry.HeapSamples, int64(ms.HeapInuse))
			}
		}
	}()

	res, err := loadgen.Run(loadgen.Options{
		TargetFn:       targetFn,
		Body:           payload,
		Rate:           rate,
		Duration:       dur,
		MaxOutstanding: 256,
		Timeout:        10 * time.Second,
		Validate:       validate,
	})
	close(samplerStop)
	<-samplerDone
	if err != nil {
		return entry, err
	}

	entry.Issued = res.Issued
	entry.Errors = res.Errors
	entry.GoodputRPS = res.GoodputRPS
	entry.P50NS = res.Summary.P50.Nanoseconds()
	entry.P99NS = res.Summary.P99.Nanoseconds()
	if s := entry.HeapSamples; len(s) >= 6 {
		mean := func(xs []int64) float64 {
			var sum int64
			for _, x := range xs {
				sum += x
			}
			return float64(sum) / float64(len(xs))
		}
		mid := mean(s[len(s)/3 : 2*len(s)/3])
		last := mean(s[2*len(s)/3:])
		if mid > 0 {
			entry.SteadyRSSRatio = last / mid
		}
	} else {
		entry.SteadyRSSRatio = 1
	}
	for _, h := range entry.HeapSamples {
		entry.HeapPeakBytes = max(entry.HeapPeakBytes, h)
	}
	if n := len(entry.HeapSamples); n > 0 {
		entry.HeapEndBytes = entry.HeapSamples[n-1]
	}
	if cs, ok := rt.CacheStats(); ok {
		entry.Cache = &cs
	}
	return entry, nil
}

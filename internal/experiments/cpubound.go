package experiments

import "sledge/internal/workloads/apps"

// RunCPUBound reproduces the experiment the paper describes in §5.2 text
// ("we additionally run experiments with CPU-bound functions of various
// computation times. As functions become increasingly CPU-bound, the
// performance of Sledge gets closer to Nuclio"): a tunable spin function is
// swept across iteration counts and the Sledge/Nuclio throughput ratio is
// reported per point.
func RunCPUBound(o Options) ([]*Table, error) {
	type sweep struct {
		label string
		iters uint32
	}
	points := []sweep{
		{"1k iters", 1_000},
		{"10k iters", 10_000},
		{"100k iters", 100_000},
		{"1M iters", 1_000_000},
		{"10M iters", 10_000_000},
	}
	conc, nSledge, nNuclio := 50, 400, 150
	if o.Quick {
		points = points[:3]
		conc, nSledge, nNuclio = 4, 20, 8
	}
	sp, err := startServers(o, []string{"spin"})
	if err != nil {
		return nil, err
	}
	defer sp.close()

	tbl := &Table{
		ID:      "cpubound",
		Title:   "CPU-bound function sweep: Sledge advantage vs computation time (§5.2 text)",
		Headers: append([]string{"computation"}, pointHeaders[1:]...),
		Notes: []string{
			"as the function becomes compute-bound, the Sledge/baseline throughput ratio falls toward and below 1 (Wasm overhead dominates per-request savings)",
		},
	}
	for _, pt := range points {
		n := nSledge
		// Long spins need fewer requests to measure.
		if pt.iters >= 1_000_000 {
			n = nSledge / 10
		}
		p, err := sp.measure("spin", conc, n, nNuclio, apps.SpinRequest(pt.iters))
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, pointRow(pt.label, p))
		o.logf("cpubound: %s ratio=%.2f", pt.label, p.sledgeRPS/p.nuclioRPS)
	}
	return []*Table{tbl}, nil
}

package experiments

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"sledge/internal/abi"
	"sledge/internal/core"
	"sledge/internal/engine"
	"sledge/internal/nuclio"
	"sledge/internal/sandbox"
	"sledge/internal/sched"
	"sledge/internal/stats"
	"sledge/internal/wcc"
	"sledge/internal/workloads/apps"
)

// spinSource is a CPU-bound tenant whose runtime scales with the request
// size, used to create interference.
const spinSource = `
static u8 out[1];

export i32 main() {
	i32 n = sys_req_len();
	i32 acc = 0;
	for (i32 i = 0; i < n * 1000; i = i + 1) {
		acc = acc + i;
	}
	out[0] = 100 + (acc & 1);
	sys_write(out, 1);
	return 0;
}
`

func compileSpin(cfg engine.Config) (*engine.CompiledModule, error) {
	res, err := wcc.Compile(spinSource, wcc.Options{})
	if err != nil {
		return nil, err
	}
	return engine.CompileBinary(res.Binary, abi.Registry(), cfg)
}

// RunAblationQuantum sweeps the preemption quantum and measures a
// latency-sensitive tenant's response time while a CPU-hog tenant runs —
// the design choice behind §3.4's temporal isolation.
func RunAblationQuantum(o Options) ([]*Table, error) {
	quanta := []struct {
		label string
		cfg   sched.Config
	}{
		{"1ms", sched.Config{Quantum: time.Millisecond}},
		{"5ms (paper)", sched.Config{Quantum: 5 * time.Millisecond}},
		{"20ms", sched.Config{Quantum: 20 * time.Millisecond}},
		{"100ms", sched.Config{Quantum: 100 * time.Millisecond}},
		{"cooperative", sched.Config{Policy: sched.PolicyCooperative}},
	}
	hogSize, shorts := 30000, 15
	if o.Quick {
		hogSize, shorts = 5000, 4
	}
	cm, err := compileSpin(engine.Config{})
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:      "ablation-quantum",
		Title:   "Quantum sweep: short-tenant latency under a CPU-hog tenant (1 worker)",
		Headers: []string{"quantum", "short mean", "short p99", "hog total", "preemptions"},
		Notes: []string{
			"small quanta bound the short tenant's latency; cooperative scheduling serializes it behind the hog (head-of-line blocking)",
		},
	}
	for _, q := range quanta {
		cfg := q.cfg
		cfg.Workers = 1
		pool := sched.NewPool(cfg)

		var wg sync.WaitGroup
		hog, err := sandbox.New(cm, make([]byte, hogSize), sandbox.Options{Tenant: "hog"})
		if err != nil {
			pool.Stop()
			return nil, err
		}
		wg.Add(1)
		hogStart := time.Now()
		var hogDur time.Duration
		hog.OnComplete = func(*sandbox.Sandbox) { hogDur = time.Since(hogStart); wg.Done() }
		if err := pool.Submit(hog); err != nil {
			pool.Stop()
			return nil, err
		}
		time.Sleep(2 * time.Millisecond)

		lats := make([]time.Duration, 0, shorts)
		for i := 0; i < shorts; i++ {
			short, err := sandbox.New(cm, make([]byte, 1), sandbox.Options{Tenant: "short"})
			if err != nil {
				pool.Stop()
				return nil, err
			}
			ch := make(chan time.Duration, 1)
			start := time.Now()
			short.OnComplete = func(*sandbox.Sandbox) { ch <- time.Since(start) }
			if err := pool.Submit(short); err != nil {
				pool.Stop()
				return nil, err
			}
			lats = append(lats, <-ch)
		}
		wg.Wait()
		st := pool.Stats()
		pool.Stop()
		s := stats.Summarize(lats)
		tbl.Rows = append(tbl.Rows, []string{
			q.label, s.Mean.String(), s.P99.String(), hogDur.String(), fmt.Sprint(st.Preemptions),
		})
		o.logf("ablation-quantum: %s short mean=%v", q.label, s.Mean)
	}
	return []*Table{tbl}, nil
}

// RunAblationDistribution compares the work-distribution structures from
// §3.4: the lock-free deque vs a mutex global queue vs static assignment.
func RunAblationDistribution(o Options) ([]*Table, error) {
	n, workers := 600, 4
	if o.Quick {
		n, workers = 60, 2
	}
	cm, err := compileSpin(engine.Config{})
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:      "ablation-dist",
		Title:   fmt.Sprintf("Work distribution: %d short requests on %d workers", n, workers),
		Headers: []string{"mechanism", "total time", "req/s", "steals"},
		Notes: []string{
			"static assignment is not work-conserving: a backlog behind one worker cannot be drained by idle peers",
		},
	}
	for _, dist := range []sched.Distribution{sched.DistWorkStealing, sched.DistGlobalDeque, sched.DistGlobalLock, sched.DistStatic} {
		pool := sched.NewPool(sched.Config{Workers: workers, Distribution: dist})
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < n; i++ {
			size := 1
			if i%10 == 0 {
				size = 200 // occasional heavier request to skew queues
			}
			sb, err := sandbox.New(cm, make([]byte, size), sandbox.Options{})
			if err != nil {
				pool.Stop()
				return nil, err
			}
			wg.Add(1)
			sb.OnComplete = func(*sandbox.Sandbox) { wg.Done() }
			if err := pool.Submit(sb); err != nil {
				pool.Stop()
				return nil, err
			}
		}
		wg.Wait()
		elapsed := time.Since(start)
		st := pool.Stats()
		pool.Stop()
		tbl.Rows = append(tbl.Rows, []string{
			dist.String(), elapsed.String(),
			fmt.Sprintf("%.0f", float64(n)/elapsed.Seconds()),
			fmt.Sprint(st.Steals),
		})
		o.logf("ablation-dist: %s %v", dist, elapsed)
	}
	return []*Table{tbl}, nil
}

// RunAblationBounds re-runs two applications under every bounds strategy —
// the end-to-end cost of each §3.2 memory-safety mechanism.
func RunAblationBounds(o Options) ([]*Table, error) {
	iters := 50
	if o.Quick {
		iters = 5
	}
	strategies := []engine.BoundsStrategy{
		engine.BoundsNone, engine.BoundsGuard, engine.BoundsSoftwareFused,
		engine.BoundsSoftware, engine.BoundsMPX,
	}
	tbl := &Table{
		ID:      "ablation-bounds",
		Title:   "Bounds-check strategies on application latency (mean)",
		Headers: append([]string{"application"}, strategyNames(strategies)...),
	}
	for _, name := range []string{"gocr", "cifar10"} {
		app, _ := apps.Get(name)
		req := app.GenRequest()
		want := app.Native(req)
		row := []string{name}
		for _, bs := range strategies {
			cm, err := app.Compile(engine.Config{Bounds: bs})
			if err != nil {
				return nil, err
			}
			// Warm the allocator and caches before timing.
			for i := 0; i < 3; i++ {
				if _, err := apps.RunWasm(cm, req); err != nil {
					return nil, err
				}
			}
			lats := make([]time.Duration, 0, iters)
			for i := 0; i < iters; i++ {
				t0 := time.Now()
				got, err := apps.RunWasm(cm, req)
				lats = append(lats, time.Since(t0))
				if err != nil {
					return nil, err
				}
				if !bytes.Equal(got, want) {
					return nil, fmt.Errorf("ablation-bounds: %s/%s diverged", name, bs)
				}
			}
			row = append(row, stats.Summarize(lats).Mean.String())
		}
		tbl.Rows = append(tbl.Rows, row)
		o.logf("ablation-bounds: %s done", name)
	}
	return []*Table{tbl}, nil
}

func strategyNames(ss []engine.BoundsStrategy) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.String()
	}
	return out
}

// RunAblationStartup quantifies the paper's decoupling of linking/loading
// from instantiation: per-request cost when the module is re-processed each
// time vs instantiated from the preloaded module.
func RunAblationStartup(o Options) ([]*Table, error) {
	iters := 300
	if o.Quick {
		iters = 30
	}
	app, _ := apps.Get("gps-ekf")
	res, err := wcc.Compile(app.Source, wcc.Options{HeapBytes: app.HeapBytes, Data: app.Data})
	if err != nil {
		return nil, err
	}
	host := abi.Registry()

	// Coupled: decode + validate + lower per request (cold path).
	coupled := make([]time.Duration, 0, iters)
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		cm, err := engine.CompileBinary(res.Binary, host, engine.Config{})
		if err != nil {
			return nil, err
		}
		sb, err := sandbox.New(cm, nil, sandbox.Options{})
		if err != nil {
			return nil, err
		}
		sb.Fail(nil)
		coupled = append(coupled, time.Since(t0))
	}

	// Decoupled: compile once, instantiate per request (the Sledge design).
	cm, err := engine.CompileBinary(res.Binary, host, engine.Config{})
	if err != nil {
		return nil, err
	}
	decoupled := make([]time.Duration, 0, iters)
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		sb, err := sandbox.New(cm, nil, sandbox.Options{})
		if err != nil {
			return nil, err
		}
		sb.Fail(nil)
		decoupled = append(decoupled, time.Since(t0))
	}

	cs := stats.Summarize(coupled)
	ds := stats.Summarize(decoupled)
	tbl := &Table{
		ID:      "ablation-startup",
		Title:   "Decoupled linking/loading vs per-request module processing (GPS-EKF)",
		Headers: []string{"design", "avg", "p99"},
		Rows: [][]string{
			{"coupled (process module per request)", cs.Mean.String(), cs.P99.String()},
			{"decoupled (Sledge: instantiate only)", ds.Mean.String(), ds.P99.String()},
		},
		Notes: []string{
			fmt.Sprintf("decoupling makes startup %.0fx cheaper", float64(cs.Mean)/float64(ds.Mean)),
		},
	}
	return []*Table{tbl}, nil
}

// RunAblationWarm strengthens the baseline with warm (pre-forked, reused)
// worker processes that skip fork+exec and pay only pipe IPC. On this
// reproduction the warm-native path wins on sequential mean latency —
// an honest consequence of the interpreter substitution (the paper's Wasm
// ran at ~1.1x native; ours is interpreter-scale). The cold-vs-warm gap
// itself, and the fact that Sledge sits within the warm baseline's order
// of magnitude while providing in-process multi-tenant isolation, are the
// reproducible observations.
func RunAblationWarm(o Options) ([]*Table, error) {
	iters := 400
	if o.Quick {
		iters = 40
	}
	rt := core.New(core.Config{Workers: 1})
	defer rt.Close()
	for _, name := range []string{"ping", "gps-ekf"} {
		app, _ := apps.Get(name)
		cm, err := app.Compile(rt.EngineConfig())
		if err != nil {
			return nil, err
		}
		if _, err := rt.RegisterCompiled(name, cm, "main", ""); err != nil {
			return nil, err
		}
	}
	cold, err := nuclio.New(nuclio.Config{MaxWorkers: 1})
	if err != nil {
		return nil, err
	}
	warm, err := nuclio.NewWarmPool(1)
	if err != nil {
		return nil, err
	}
	defer warm.Close()

	tbl := &Table{
		ID:      "ablation-warm",
		Title:   "Baseline hardening: Sledge vs cold-spawn vs warm process workers (mean latency)",
		Headers: []string{"function", "sledge sandbox", "warm process", "cold fork+exec"},
		Notes: []string{
			"warm workers run native code and skip fork+exec; they beat the interpreted sandbox on raw latency — with the paper's near-native Wasm codegen the comparison flips (see EXPERIMENTS.md)",
		},
	}
	for _, name := range []string{"ping", "gps-ekf"} {
		app, _ := apps.Get(name)
		req := app.GenRequest()

		measure := func(fn func() error, n int) (time.Duration, error) {
			// warm-up
			for i := 0; i < 3; i++ {
				if err := fn(); err != nil {
					return 0, err
				}
			}
			t0 := time.Now()
			for i := 0; i < n; i++ {
				if err := fn(); err != nil {
					return 0, err
				}
			}
			return time.Since(t0) / time.Duration(n), nil
		}
		sl, err := measure(func() error { _, err := rt.Invoke(name, req); return err }, iters)
		if err != nil {
			return nil, fmt.Errorf("ablation-warm sledge %s: %w", name, err)
		}
		wm, err := measure(func() error { _, err := warm.Invoke(name, req); return err }, iters)
		if err != nil {
			return nil, fmt.Errorf("ablation-warm warm %s: %w", name, err)
		}
		coldIters := iters / 10
		if coldIters < 5 {
			coldIters = 5
		}
		cd, err := measure(func() error { _, err := cold.Invoke(name, req); return err }, coldIters)
		if err != nil {
			return nil, fmt.Errorf("ablation-warm cold %s: %w", name, err)
		}
		tbl.Rows = append(tbl.Rows, []string{name, sl.String(), wm.String(), cd.String()})
		o.logf("ablation-warm: %s sledge=%v warm=%v cold=%v", name, sl, wm, cd)
	}
	return []*Table{tbl}, nil
}

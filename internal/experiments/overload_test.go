package experiments

import (
	"testing"
	"time"

	"sledge/internal/admission"
	"sledge/internal/loadgen"
	"sledge/internal/workloads/apps"
)

// TestOverloadSmoke drives the admission-controlled runtime at twice its
// measured capacity and checks that the requests it chose to admit almost
// all succeed: overload must surface as controlled shedding (429/503), not
// as errors or collapsed goodput.
func TestOverloadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("overload smoke skipped in -short mode")
	}
	rt, url, err := startOverloadRuntime(2, &admission.Config{
		DefaultDeadline: 300 * time.Millisecond,
		MaxQueue:        16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	body := apps.SpinRequest(50_000)
	capRes, err := loadgen.Run(loadgen.Options{
		URL: url + "/spin", Concurrency: 4, Requests: 200, Body: body,
	})
	if err != nil {
		t.Fatalf("capacity: %v", err)
	}
	capacity := capRes.ThroughputRPS
	if capacity <= 0 {
		t.Fatalf("no capacity measured: %+v", capRes.Summary)
	}

	res, err := loadgen.Run(loadgen.Options{
		URL:      url + "/spin",
		Body:     body,
		Rate:     2 * capacity,
		Duration: 600 * time.Millisecond,
		Timeout:  10 * time.Second,
	})
	if err != nil {
		t.Fatalf("overload run: %v", err)
	}
	admitted := res.Issued - res.Rejected - res.Dropped
	if admitted <= 0 {
		t.Fatalf("nothing admitted: issued=%d rejected=%d dropped=%d",
			res.Issued, res.Rejected, res.Dropped)
	}
	errRate := float64(res.Errors) / float64(admitted)
	t.Logf("capacity=%.0f rps, offered=%.0f rps, goodput=%.0f rps, admitted=%d, shed=%d, errors=%d (rate %.3f%%), p99=%v",
		capacity, res.OfferedRPS, res.GoodputRPS, admitted, res.Rejected, res.Errors, 100*errRate, res.Summary.P99)
	if errRate >= 0.01 {
		t.Errorf("admitted error rate %.2f%% >= 1%%", 100*errRate)
	}
	// Goodput must not collapse under 2x offered load.
	if res.GoodputRPS < 0.5*capacity {
		t.Errorf("goodput %.0f rps collapsed below half of capacity %.0f rps",
			res.GoodputRPS, capacity)
	}
}

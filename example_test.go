package sledge_test

import (
	"fmt"
	"log"

	"sledge"
)

// Example deploys a WCC function and invokes it — the library's minimal
// end-to-end path: source → Wasm → AoT module → per-request sandbox.
func Example() {
	rt := sledge.New(sledge.Config{Workers: 1})
	defer rt.Close()

	const src = `
static u8 buf[64];

export i32 main() {
	i32 n = sys_read(buf, 64);
	i32 sum = 0;
	for (i32 i = 0; i < n; i = i + 1) {
		sum = sum + buf[i];
	}
	buf[0] = sum % 256;
	sys_write(buf, 1);
	return 0;
}
`
	if _, err := rt.RegisterWCC("bytesum", src, sledge.WCCOptions{}); err != nil {
		log.Fatal(err)
	}
	resp, err := rt.Invoke("bytesum", []byte{1, 2, 3, 4, 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(resp[0])
	// Output: 15
}

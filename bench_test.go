// Benchmarks mapping to the paper's tables and figures (see DESIGN.md's
// per-experiment index). Each Benchmark* regenerates the measurement behind
// one paper artifact; `go test -bench . -benchmem` prints them all, and
// cmd/sledge-bench renders the full formatted tables.
package sledge_test

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"testing"

	"sledge"
	"sledge/internal/engine"
	"sledge/internal/experiments"
	"sledge/internal/loadgen"
	"sledge/internal/nuclio"
	"sledge/internal/sandbox"
	"sledge/internal/sched"
	"sledge/internal/wcc"
	"sledge/internal/workloads/apps"
	"sledge/internal/workloads/polybench"
)

func TestMain(m *testing.M) {
	// The Nuclio-baseline benchmarks re-execute this binary as their
	// function worker process.
	if nuclio.MaybeWorkerMain() {
		return
	}
	os.Exit(m.Run())
}

// ---- Figure 5 / Table 1: Wasm runtime configurations on PolyBench ----

// BenchmarkFig5PolybenchConfigs measures a representative PolyBench kernel
// (gemm) under every runtime configuration of Figure 5 plus the native
// baseline. The relative ns/op across sub-benchmarks is the figure's
// normalized-slowdown series.
func BenchmarkFig5PolybenchConfigs(b *testing.B) {
	k, _ := polybench.Get("gemm")
	n := k.TestN * 2

	b.Run("native", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = k.Native(n)
		}
	})
	for _, rc := range experiments.Fig5Classes {
		cm, err := k.Compile(n, rc.Cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(rc.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := polybench.RunWasm(cm, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 6: ping with varying concurrency ----

func BenchmarkFig6PingSledgeHTTP(b *testing.B) {
	rt := sledge.New(sledge.Config{Workers: 2})
	defer rt.Close()
	registerBenchApp(b, rt, "ping")
	url := serveBench(b, rt)

	for _, conc := range []int{1, 16} {
		b.Run(fmt.Sprintf("c%d", conc), func(b *testing.B) {
			res, err := loadgen.Run(loadgen.Options{
				URL: url + "/ping", Concurrency: conc, Requests: b.N,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.ThroughputRPS, "req/s")
			b.ReportMetric(float64(res.Summary.P99.Microseconds()), "p99-µs")
		})
	}
}

func BenchmarkFig6PingNuclioHTTP(b *testing.B) {
	nuc, err := nuclio.New(nuclio.Config{MaxWorkers: 16})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := nuc.Invoke("ping", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 7: payload sweep ----

func BenchmarkFig7PayloadEcho(b *testing.B) {
	rt := sledge.New(sledge.Config{Workers: 2})
	defer rt.Close()
	registerBenchApp(b, rt, "echo")

	for _, size := range []int{1 << 10, 100 << 10} {
		payload := apps.EchoPayload(size)
		b.Run(fmt.Sprintf("%dKB", size>>10), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				resp, err := rt.Invoke("echo", payload)
				if err != nil {
					b.Fatal(err)
				}
				if len(resp) != size {
					b.Fatalf("short echo: %d", len(resp))
				}
			}
		})
	}
}

// ---- Figure 8 / Table 2: real-world applications ----

func BenchmarkFig8Apps(b *testing.B) {
	rt := sledge.New(sledge.Config{Workers: 2})
	defer rt.Close()
	for _, name := range []string{"gps-ekf", "gocr", "cifar10", "resize", "lpd"} {
		registerBenchApp(b, rt, name)
		app, _ := apps.Get(name)
		req := app.GenRequest()
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rt.Invoke(name, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable2NativeVsSledge(b *testing.B) {
	for _, name := range []string{"gps-ekf", "gocr", "cifar10"} {
		app, _ := apps.Get(name)
		req := app.GenRequest()
		want := app.Native(req)
		b.Run(name+"/native", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = app.Native(req)
			}
		})
		cm, err := app.Compile(engine.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/sledge", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				got, err := apps.RunWasm(cm, req)
				if err != nil {
					b.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					b.Fatal("wasm diverged from native")
				}
			}
		})
	}
}

// ---- Table 3: churn ----

func BenchmarkTable3ChurnSandbox(b *testing.B) {
	app, _ := apps.Get("gps-ekf")
	cm, err := app.Compile(engine.Config{})
	if err != nil {
		b.Fatal(err)
	}
	req := app.GenRequest()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sb, err := sandbox.New(cm, req, sandbox.Options{})
		if err != nil {
			b.Fatal(err)
		}
		sb.Fail(nil)
	}
}

// ---- invocation churn: the zero-allocation request path ----

const benchNoopSrc = `
export i32 main() { return 0; }
`

// BenchmarkInvokeChurn drives full end-to-end Runtime.Invoke churn with and
// without the recycling layer. The pooled steady state is the zero-allocs/op
// claim: sandbox shell, engine instance, timeout timer, and context are all
// recycled (an empty response avoids the mandatory response copy).
func BenchmarkInvokeChurn(b *testing.B) {
	for _, mode := range []struct {
		name      string
		noRecycle bool
	}{
		{"pooled", false},
		{"norecycle", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			rt := sledge.New(sledge.Config{Workers: 1, NoRecycle: mode.noRecycle})
			defer rt.Close()
			if _, err := rt.RegisterWCC("noop", benchNoopSrc, sledge.WCCOptions{}); err != nil {
				b.Fatal(err)
			}
			// Warm the pools before measuring.
			for i := 0; i < 16; i++ {
				if _, err := rt.Invoke("noop", nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rt.Invoke("noop", nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInstantiateReuse isolates the engine layer: a fresh Instantiate
// per request versus the pool's Acquire/Release cycle.
func BenchmarkInstantiateReuse(b *testing.B) {
	app, _ := apps.Get("gps-ekf")
	cm, err := app.Compile(engine.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("instantiate-fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			in := cm.Instantiate()
			in.Teardown()
		}
	})
	b.Run("acquire-release", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			in := cm.Acquire()
			cm.Release(in)
		}
	})
}

func BenchmarkTable3ChurnForkExec(b *testing.B) {
	nuc, err := nuclio.New(nuclio.Config{MaxWorkers: 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if err := nuc.SpawnNoop(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation benches ----

// BenchmarkAblationDeque measures the work-stealing deque against the
// mutex-protected global queue (§3.4's scalability argument).
func BenchmarkAblationDeque(b *testing.B) {
	b.Run("chase-lev-push-pop", func(b *testing.B) {
		d := sched.NewDeque[int](1024)
		v := 7
		for i := 0; i < b.N; i++ {
			d.PushBottom(&v)
			d.PopBottom()
		}
	})
	b.Run("chase-lev-push-steal", func(b *testing.B) {
		d := sched.NewDeque[int](1024)
		v := 7
		for i := 0; i < b.N; i++ {
			d.PushBottom(&v)
			d.Steal()
		}
	})
	b.Run("runq-push-pop", func(b *testing.B) {
		q := sched.NewRunq[int](1024)
		v := 7
		for i := 0; i < b.N; i++ {
			q.Push(&v)
			q.Pop()
		}
	})
	b.Run("runq-push-steal-batch", func(b *testing.B) {
		// Eight queued per round, one StealBatch moving half: the
		// amortized per-element cost of batched transfer.
		q := sched.NewRunq[int](1024)
		v := 7
		var dst [8]*int
		b.ResetTimer()
		for i := 0; i < b.N; i += 8 {
			for j := 0; j < 8; j++ {
				q.Push(&v)
			}
			q.StealBatch(dst[:], 8)
			for {
				if _, ok := q.Pop(); !ok {
					break
				}
			}
		}
	})
}

// BenchmarkAblationStartupDecoupling contrasts per-request module
// processing with Sledge's instantiate-only fast path.
func BenchmarkAblationStartupDecoupling(b *testing.B) {
	app, _ := apps.Get("gps-ekf")
	cmShared, err := app.Compile(engine.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decoupled-instantiate-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sb, err := sandbox.New(cmShared, nil, sandbox.Options{})
			if err != nil {
				b.Fatal(err)
			}
			sb.Fail(nil)
		}
	})
	b.Run("coupled-compile-per-request", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cm, err := app.Compile(engine.Config{})
			if err != nil {
				b.Fatal(err)
			}
			sb, err := sandbox.New(cm, nil, sandbox.Options{})
			if err != nil {
				b.Fatal(err)
			}
			sb.Fail(nil)
		}
	})
}

// BenchmarkAblationBoundsStrategies isolates the §3.2 memory-safety
// mechanisms on a load/store-heavy kernel.
func BenchmarkAblationBoundsStrategies(b *testing.B) {
	k, _ := polybench.Get("jacobi-2d")
	n := k.TestN * 2
	for _, bs := range []engine.BoundsStrategy{
		engine.BoundsNone, engine.BoundsGuard, engine.BoundsSoftwareFused,
		engine.BoundsSoftware, engine.BoundsMPX,
	} {
		cm, err := k.Compile(n, engine.Config{Bounds: bs})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(bs.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := polybench.RunWasm(cm, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- static-analysis check-elision ablation ----

// benchChecksumSrc is a memory-bound checksum walk over a static buffer with
// constant loop bounds: the interval/induction pass can prove every access
// in-bounds, so under BoundsSoftware the analysis elides 100% of the checks.
const benchChecksumSrc = `
static u8 buf[65536];

export i32 kernel(i32 n) {
	i32 acc = 0;
	for (i32 r = 0; r < n; r = r + 1) {
		for (i32 i = 0; i < 65536; i = i + 1) {
			buf[i] = (i + r) * 31;
		}
		for (i32 i = 0; i < 65536; i = i + 1) {
			acc = acc + (i32) buf[i];
		}
	}
	return acc;
}
`

// BenchmarkAblationElision measures what the static bounds-check elision
// buys under BoundsSoftware: gemm (partial elision via availability) and the
// checksum walk (total elision via intervals + induction), each with the
// analysis pipeline on and off. The elided-frac metric is the statically
// proven share of emitted checks.
func BenchmarkAblationElision(b *testing.B) {
	modes := []struct {
		name string
		c    engine.Config
	}{
		{"elide", engine.Config{Bounds: engine.BoundsSoftware}},
		{"no-elide", engine.Config{Bounds: engine.BoundsSoftware, NoAnalysis: true}},
	}

	k, _ := polybench.Get("gemm")
	n := k.TestN * 2
	for _, mode := range modes {
		cm, err := k.Compile(n, mode.c)
		if err != nil {
			b.Fatal(err)
		}
		st := cm.Analysis()
		b.Run("gemm/"+mode.name, func(b *testing.B) {
			if st.ChecksTotal > 0 {
				b.ReportMetric(float64(st.ChecksElided)/float64(st.ChecksTotal), "elided-frac")
			}
			for i := 0; i < b.N; i++ {
				if _, err := polybench.RunWasm(cm, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	res, err := wcc.Compile(benchChecksumSrc, wcc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range modes {
		cm, err := engine.CompileBinary(res.Binary, nil, mode.c)
		if err != nil {
			b.Fatal(err)
		}
		st := cm.Analysis()
		b.Run("checksum/"+mode.name, func(b *testing.B) {
			if st.ChecksTotal > 0 {
				b.ReportMetric(float64(st.ChecksElided)/float64(st.ChecksTotal), "elided-frac")
			}
			for i := 0; i < b.N; i++ {
				in := cm.Acquire()
				if _, err := in.Invoke("kernel", 4); err != nil {
					b.Fatal(err)
				}
				cm.Release(in)
			}
		})
	}
}

// ---- helpers ----

func registerBenchApp(b *testing.B, rt *sledge.Runtime, name string) {
	b.Helper()
	app, ok := apps.Get(name)
	if !ok {
		b.Fatalf("app %s missing", name)
	}
	cm, err := app.Compile(rt.EngineConfig())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := rt.RegisterCompiled(name, cm, "main", ""); err != nil {
		b.Fatal(err)
	}
}

func serveBench(b *testing.B, rt *sledge.Runtime) string {
	b.Helper()
	ln, err := netListen()
	if err != nil {
		b.Fatal(err)
	}
	go rt.Serve(ln)
	return "http://" + ln.Addr().String()
}

func netListen() (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }

// BenchmarkAblationFusion isolates the optimized tier's superinstruction
// peephole (index arithmetic, loop counters, addressed loads).
func BenchmarkAblationFusion(b *testing.B) {
	k, _ := polybench.Get("gemm")
	n := k.TestN * 2
	for _, cfg := range []struct {
		name string
		c    engine.Config
	}{
		{"fused", engine.Config{}},
		{"no-fusion", engine.Config{NoFusion: true}},
	} {
		cm, err := k.Compile(n, cfg.c)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := polybench.RunWasm(cm, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRegalloc isolates the register-allocation pass under
// BoundsSoftware (the paper's software-checked configuration): register
// form vs the stack-machine hot loop, same lowering otherwise. The
// three-addr metric is the count of fused three-address register ops plus
// register-operand branches the pass produced for the kernel module.
func BenchmarkAblationRegalloc(b *testing.B) {
	k, _ := polybench.Get("gemm")
	n := k.TestN * 2
	for _, cfg := range []struct {
		name string
		c    engine.Config
	}{
		{"register", engine.Config{Bounds: engine.BoundsSoftware}},
		{"stack", engine.Config{Bounds: engine.BoundsSoftware, NoRegalloc: true}},
	} {
		cm, err := k.Compile(n, cfg.c)
		if err != nil {
			b.Fatal(err)
		}
		rs := cm.Regalloc()
		b.Run(cfg.name, func(b *testing.B) {
			if rs.Enabled {
				b.ReportMetric(float64(rs.ThreeAddressFused+rs.BranchFused), "three-addr")
			}
			for i := 0; i < b.N; i++ {
				if _, err := polybench.RunWasm(cm, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

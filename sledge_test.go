package sledge_test

import (
	"bytes"
	"testing"
	"time"

	"sledge"
)

// TestPublicAPIQuickstart exercises the README's quickstart path through
// the public facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	rt := sledge.New(sledge.Config{Workers: 2, Quantum: sledge.DefaultQuantum})
	defer rt.Close()

	const src = `
static u8 buf[64];

export i32 main() {
	i32 n = sys_read(buf, 64);
	for (i32 i = 0; i < n; i = i + 1) {
		if (buf[i] >= 97 && buf[i] <= 122) {
			buf[i] = buf[i] - 32; // to upper
		}
	}
	sys_write(buf, n);
	return 0;
}
`
	if _, err := rt.RegisterWCC("upper", src, sledge.WCCOptions{}); err != nil {
		t.Fatalf("RegisterWCC: %v", err)
	}
	resp, err := rt.Invoke("upper", []byte("edge functions"))
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if string(resp) != "EDGE FUNCTIONS" {
		t.Errorf("resp = %q", resp)
	}
}

// TestPublicAPIKVAndEngineConfig covers storage plus a non-default engine
// configuration through the facade.
func TestPublicAPIKVAndEngineConfig(t *testing.T) {
	kv := sledge.NewMapKV()
	kv.Set("greeting", []byte("hi"))
	rt := sledge.New(sledge.Config{
		Workers: 1,
		KV:      &sledge.LatentKV{KVStore: kv, Delay: time.Millisecond},
		Engine:  sledge.EngineConfig{Bounds: sledge.BoundsSoftware},
	})
	defer rt.Close()

	const src = `
static u8 key[8];
static u8 val[16];

export i32 main() {
	key[0] = 103; key[1] = 114; key[2] = 101; key[3] = 101;
	key[4] = 116; key[5] = 105; key[6] = 110; key[7] = 103;
	i32 n = sys_kv_get(key, 8, val, 16);
	sys_write(val, n);
	return n;
}
`
	if _, err := rt.RegisterWCC("greet", src, sledge.WCCOptions{}); err != nil {
		t.Fatalf("RegisterWCC: %v", err)
	}
	// The latent KV forces the sandbox through block/park/resume.
	resp, err := rt.Invoke("greet", nil)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if !bytes.Equal(resp, []byte("hi")) {
		t.Errorf("resp = %q", resp)
	}
}

// TestPublicAPISchedulerKnobs checks the exported scheduler constants wire
// through to runtime behaviour.
func TestPublicAPISchedulerKnobs(t *testing.T) {
	rt := sledge.New(sledge.Config{
		Workers:      1,
		Policy:       sledge.PolicyCooperative,
		Distribution: sledge.DistGlobalLock,
	})
	defer rt.Close()
	if _, err := rt.RegisterWCC("noop", `export i32 main() { return 0; }`, sledge.WCCOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := rt.Invoke("noop", nil); err != nil {
			t.Fatal(err)
		}
	}
	st := rt.Stats()
	if st.Completed != 5 || st.Preemptions != 0 {
		t.Errorf("stats %+v", st)
	}
}

// TestPublicAPIPipeline composes two functions through the facade: the
// first declares its result with sys_output (handed to the next stage
// zero-copy), the second transforms it via the buffered path.
func TestPublicAPIPipeline(t *testing.T) {
	rt := sledge.New(sledge.Config{Workers: 2})
	defer rt.Close()

	const upper = `
export i32 main() {
	i32 n = sys_input_len();
	u8* buf = alloc(n);
	sys_read(buf, n);
	for (i32 i = 0; i < n; i = i + 1) {
		if (buf[i] >= 97 && buf[i] <= 122) {
			buf[i] = buf[i] - 32;
		}
	}
	sys_output(buf, n);
	return 0;
}
`
	const exclaim = `
static u8 bang[1];

export i32 main() {
	i32 n = sys_req_len();
	u8* buf = alloc(n);
	sys_read(buf, n);
	sys_write(buf, n);
	bang[0] = 33; // '!'
	sys_write(bang, 1);
	return 0;
}
`
	if _, err := rt.RegisterWCC("upper", upper, sledge.WCCOptions{HeapBytes: 1 << 16}); err != nil {
		t.Fatalf("RegisterWCC upper: %v", err)
	}
	if _, err := rt.RegisterWCC("exclaim", exclaim, sledge.WCCOptions{HeapBytes: 1 << 16}); err != nil {
		t.Fatalf("RegisterWCC exclaim: %v", err)
	}
	p, err := rt.RegisterPipeline("shout", "upper", "exclaim")
	if err != nil {
		t.Fatalf("RegisterPipeline: %v", err)
	}
	resp, err := rt.InvokePipeline("shout", []byte("edge functions"))
	if err != nil {
		t.Fatalf("InvokePipeline: %v", err)
	}
	if string(resp) != "EDGE FUNCTIONS!" {
		t.Errorf("resp = %q", resp)
	}
	// The same chain answers under the reserved p/ namespace too.
	resp, err = rt.Invoke(sledge.PipelinePrefix+"shout", []byte("hi"))
	if err != nil || string(resp) != "HI!" {
		t.Errorf("Invoke(p/shout) = %q, %v", resp, err)
	}
	if st := p.Stats(); st.Invocations != 2 || st.FastHandoffs != 2 {
		t.Errorf("stats = %+v, want 2 invocations, 2 fast handoffs", st)
	}
}

// Multitenant: the temporal-isolation demonstration behind §3.4 — a hostile
// CPU-bound tenant shares one worker core with a latency-sensitive tenant.
// With the paper's preemptive round-robin quantum, the short tenant's
// latency stays bounded; with cooperative scheduling it is serialized
// behind the hog (head-of-line blocking).
package main

import (
	"fmt"
	"log"
	"time"

	"sledge"
)

const hogSrc = `
static u8 out[1];

export i32 main() {
	i32 acc = 0;
	for (i32 i = 0; i < 20000000; i = i + 1) {
		acc = acc + i;
	}
	out[0] = 104; // 'h'
	sys_write(out, 1);
	return 0;
}
`

const shortSrc = `
static u8 out[1];

export i32 main() {
	out[0] = 115; // 's'
	sys_write(out, 1);
	return 0;
}
`

func run(policy sledge.SchedPolicy, label string) {
	rt := sledge.New(sledge.Config{
		Workers: 1,
		Quantum: sledge.DefaultQuantum,
		Policy:  policy,
	})
	defer rt.Close()
	if _, err := rt.RegisterWCC("hog", hogSrc, sledge.WCCOptions{}); err != nil {
		log.Fatal(err)
	}
	if _, err := rt.RegisterWCC("short", shortSrc, sledge.WCCOptions{}); err != nil {
		log.Fatal(err)
	}

	// The hostile tenant grabs the core...
	hogDone := make(chan struct{})
	go func() {
		defer close(hogDone)
		if _, err := rt.Invoke("hog", nil); err != nil {
			log.Printf("hog: %v", err)
		}
	}()
	time.Sleep(5 * time.Millisecond)

	// ...and the latency-sensitive tenant sends three requests meanwhile.
	var worst time.Duration
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		if _, err := rt.Invoke("short", nil); err != nil {
			log.Fatal(err)
		}
		if d := time.Since(t0); d > worst {
			worst = d
		}
	}
	<-hogDone
	st := rt.Stats()
	fmt.Printf("%-22s worst short-tenant latency: %10v (preemptions: %d)\n",
		label, worst.Round(100*time.Microsecond), st.Preemptions)
}

func main() {
	fmt.Println("one worker core, one CPU-hog tenant, one latency-sensitive tenant")
	fmt.Println()
	run(sledge.PolicyPreemptiveRR, "preemptive-rr (5ms):")
	run(sledge.PolicyCooperative, "cooperative:")
	fmt.Println()
	fmt.Println("preemptive round-robin bounds the short tenant's latency to a few")
	fmt.Println("quanta; cooperative scheduling serializes it behind the hog.")
}

// Imagepipeline: an edge-camera scenario chaining two of the paper's
// applications — a frame is first downscaled (RESIZE), then run through
// license-plate detection (LPD) — each step a separate sandboxed function
// invocation, as a surveillance deployment would compose them.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"sledge"
	"sledge/internal/workloads/apps"
)

func main() {
	rt := sledge.New(sledge.Config{Workers: 2})
	defer rt.Close()

	for _, name := range []string{"resize", "lpd"} {
		app, ok := apps.Get(name)
		if !ok {
			log.Fatalf("app %s missing", name)
		}
		cm, err := app.Compile(rt.EngineConfig())
		if err != nil {
			log.Fatal(err)
		}
		if _, err := rt.RegisterCompiled(name, cm, "main", ""); err != nil {
			log.Fatal(err)
		}
	}

	// The "camera": a 640x480 RGB frame.
	frame := apps.ResizeRequest(640, 480)
	fmt.Printf("captured frame: 640x480 RGB (%d bytes)\n", len(frame)-8)

	// Step 1: downscale at the edge before further processing.
	small, err := rt.Invoke("resize", frame)
	if err != nil {
		log.Fatal(err)
	}
	w := binary.LittleEndian.Uint32(small[0:])
	h := binary.LittleEndian.Uint32(small[4:])
	fmt.Printf("resized: %dx%d (%d bytes)\n", w, h, len(small)-8)

	// Step 2: convert to grayscale (host-side glue) and detect the plate.
	gray := make([]byte, 8+int(w)*int(h))
	copy(gray, small[:8])
	for i := 0; i < int(w)*int(h); i++ {
		r := int(small[8+i*3])
		g := int(small[8+i*3+1])
		b := int(small[8+i*3+2])
		gray[8+i] = byte((r*299 + g*587 + b*114) / 1000)
	}
	// Draw a synthetic plate so the detector has something to find.
	stampPlate(gray[8:], int(w), int(h))

	out, err := rt.Invoke("lpd", gray)
	if err != nil {
		log.Fatal(err)
	}
	x0 := int32(binary.LittleEndian.Uint32(out[0:]))
	y0 := int32(binary.LittleEndian.Uint32(out[4:]))
	x1 := int32(binary.LittleEndian.Uint32(out[8:]))
	y1 := int32(binary.LittleEndian.Uint32(out[12:]))
	fmt.Printf("license plate detected at (%d,%d)-(%d,%d)\n", x0, y0, x1, y1)

	st := rt.Stats()
	fmt.Printf("runtime stats: %d sandboxes completed, %d preemptions\n",
		st.Completed, st.Preemptions)
}

// stampPlate paints a high-contrast striped rectangle (the plate).
func stampPlate(img []byte, w, h int) {
	px0, py0 := w/3, 2*h/3
	px1, py1 := px0+w/4, py0+h/10
	for y := py0; y < py1; y++ {
		for x := px0; x < px1; x++ {
			if (x/3)%2 == 0 {
				img[y*w+x] = 250
			} else {
				img[y*w+x] = 5
			}
		}
	}
}

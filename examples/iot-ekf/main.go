// iot-ekf: the paper's GPS tracking scenario — an IoT client streams noisy
// position fixes to the gps-ekf serverless function and carries the filter
// state along with each request (§5.2: "it returns to the client that
// state, and relies on it to pass it along with each request").
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"sledge"
	"sledge/internal/workloads/apps"
)

func main() {
	rt := sledge.New(sledge.Config{Workers: 1})
	defer rt.Close()

	app, _ := apps.Get("gps-ekf")
	cm, err := app.Compile(rt.EngineConfig())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rt.RegisterCompiled("gps-ekf", cm, "main", ""); err != nil {
		log.Fatal(err)
	}

	// The vehicle moves on a straight line; the "GPS" measurements carry
	// deterministic pseudo-noise.
	req := apps.EKFRequest()
	fmt.Println("step   measured x      filtered x      filtered vx")
	for step := 1; step <= 12; step++ {
		truth := float64(step) * 1.0
		noise := 0.3 * math.Sin(float64(step)*12.9898)
		z := [4]float64{truth + noise, 0.5 * truth, 0.25 * truth, 0.1}

		// The request's first 576 bytes are the carried state (x, P).
		resp, err := rt.Invoke("gps-ekf", apps.EKFStep(req, req[:576], z))
		if err != nil {
			log.Fatal(err)
		}
		// Feed the returned state into the next request.
		req = apps.EKFStep(req, resp, z)

		fx := math.Float64frombits(binary.LittleEndian.Uint64(resp[0:]))
		fv := math.Float64frombits(binary.LittleEndian.Uint64(resp[8:]))
		fmt.Printf("%4d   %10.4f      %10.4f      %10.4f\n", step, z[0], fx, fv)
	}
	fmt.Println("\nfiltered positions track the measurements while smoothing the noise;")
	fmt.Println("every step ran in a fresh microsecond-startup sandbox.")
}

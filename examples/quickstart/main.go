// Quickstart: start a Sledge runtime, deploy a function written in WCC,
// and invoke it — first in-process, then over HTTP like an edge client.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"

	"sledge"
)

// The function: reverse the request body. WCC is the reproduction's C-like
// kernel language; sys_read/sys_write are the serverless ABI's stdin/stdout.
const reverseSrc = `
static u8 buf[4096];
static u8 out[4096];

export i32 main() {
	i32 n = sys_read(buf, 4096);
	for (i32 i = 0; i < n; i = i + 1) {
		out[i] = buf[n - 1 - i];
	}
	sys_write(out, n);
	return 0;
}
`

func main() {
	// One process, two worker cores, 5 ms preemption quantum.
	rt := sledge.New(sledge.Config{Workers: 2})
	defer rt.Close()

	// Registration is the expensive step: WCC -> Wasm -> AoT lowering.
	if _, err := rt.RegisterWCC("reverse", reverseSrc, sledge.WCCOptions{}); err != nil {
		log.Fatal(err)
	}

	// Direct invocation: a sandbox is instantiated per request (µs-scale).
	resp, err := rt.Invoke("reverse", []byte("hello, edge"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-process: %q -> %q\n", "hello, edge", resp)

	// The same function over HTTP, as IoT clients would reach it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go rt.Serve(ln)

	httpResp, err := http.Post("http://"+ln.Addr().String()+"/reverse",
		"application/octet-stream", bytes.NewReader([]byte("serverless")))
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	fmt.Printf("over HTTP:  %q -> %q (status %d)\n", "serverless", body, httpResp.StatusCode)
}

module sledge

go 1.22

// Command sledge-bench regenerates the paper's evaluation tables and
// figures (see DESIGN.md's per-experiment index).
//
// Usage:
//
//	sledge-bench                 # run every experiment, full size
//	sledge-bench -run fig6       # one experiment
//	sledge-bench -quick          # reduced sizes/iterations
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sledge/internal/experiments"
	"sledge/internal/nuclio"
)

func main() {
	// The serverless experiments spawn this binary as the baseline's
	// function worker.
	if nuclio.MaybeWorkerMain() {
		return
	}
	var (
		run      = flag.String("run", "all", "experiment id ("+strings.Join(experiments.IDs(), ", ")+") or all")
		quick    = flag.Bool("quick", false, "reduced problem sizes and iteration counts")
		workers  = flag.Int("workers", 0, "override Sledge worker count (0 = GOMAXPROCS)")
		quiet    = flag.Bool("quiet", false, "suppress progress logging")
		snapshot = flag.String("snapshot", "", "write a JSON result snapshot (experiments that support it)")
	)
	flag.Parse()

	opts := experiments.Options{Quick: *quick, Workers: *workers, SnapshotPath: *snapshot}
	if !*quiet {
		opts.Log = os.Stderr
	}

	ids := experiments.IDs()
	if *run != "all" {
		if _, ok := experiments.Registry[*run]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s\n", *run, strings.Join(ids, ", "))
			os.Exit(2)
		}
		ids = []string{*run}
	}
	seen := make(map[string]bool)
	for _, id := range ids {
		if id == "table1" && seen["fig5"] {
			continue // rendered together with fig5
		}
		tables, err := experiments.Registry[id](opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			os.Exit(1)
		}
		for _, tbl := range tables {
			tbl.Render(os.Stdout)
		}
		seen[id] = true
	}
}

// Command wccc compiles WCC source files to WebAssembly binaries — the
// reproduction's clang-to-Wasm step.
//
// Usage:
//
//	wccc -o fn.wasm fn.wcc
//	wccc -heap 1048576 -dump fn.wcc     # print module layout
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"sledge/internal/wcc"
)

func main() {
	var (
		out  = flag.String("o", "", "output .wasm path (default: input with .wasm extension)")
		heap = flag.Int("heap", 0, "heap bytes reserved for alloc() (default 256 KiB)")
		dump = flag.Bool("dump", false, "print static array layout and exports")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wccc [-o out.wasm] [-heap bytes] [-dump] input.wcc")
		os.Exit(2)
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		log.Fatal(err)
	}
	res, err := wcc.Compile(string(src), wcc.Options{HeapBytes: *heap})
	if err != nil {
		log.Fatal(err)
	}
	if *dump {
		fmt.Printf("exports: %s\n", strings.Join(res.Exports, ", "))
		fmt.Printf("heap base: %d\n", res.HeapBase)
		names := make([]string, 0, len(res.Arrays))
		for name := range res.Arrays {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			info := res.Arrays[name]
			fmt.Printf("array %-16s offset=%-8d bytes=%d\n", name, info.Offset, info.Bytes)
		}
	}
	target := *out
	if target == "" {
		target = strings.TrimSuffix(in, ".wcc") + ".wasm"
	}
	if err := os.WriteFile(target, res.Binary, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", target, len(res.Binary))
}

// Command sledge runs the serverless runtime as a server: it loads a
// JSON module configuration (or the built-in application suite), then
// serves function invocations over HTTP with admission control in front
// of the scheduler. SIGINT/SIGTERM trigger a graceful drain: new work is
// refused with 503, in-flight requests finish, then the process exits.
//
// Usage:
//
//	sledge -listen :8080 -apps                 # serve the built-in suite
//	sledge -listen :8080 -config modules.json  # serve configured modules
//	sledge cluster -topology nodes.json -apps  # federated multi-node mode
//	                                             (see cluster.go)
//
// Configuration format:
//
//	{
//	  "modules": [
//	    {"name": "hello", "path": "hello.wcc", "tenant": "team-a"},
//	    {"name": "fn2", "path": "fn2.wasm", "entry": "main"}
//	  ]
//	}
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"sledge"
	"sledge/internal/workloads/apps"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "cluster" {
		clusterMain(os.Args[2:])
		return
	}
	var (
		listen     = flag.String("listen", ":8080", "listen address")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker cores")
		quantumMS  = flag.Int("quantum-ms", 5, "preemption quantum in milliseconds")
		configPath = flag.String("config", "", "JSON module configuration file")
		useApps    = flag.Bool("apps", false, "register the built-in application suite")

		admissionOn = flag.Bool("admission", true, "enable admission control")
		maxInflight = flag.Int("max-inflight", 0, "global in-flight cap (0 = 2x workers)")
		maxQueue    = flag.Int("max-queue", 0, "global admit-queue depth (0 = default 256)")
		tenantRPS   = flag.Float64("tenant-rps", 0, "per-tenant token-bucket rate (0 = unlimited)")
		tenantBurst = flag.Float64("tenant-burst", 0, "per-tenant token-bucket burst")
		breakerCool = flag.Duration("breaker-cooldown", 0, "circuit-breaker open cooldown (0 = default 2s)")
		maxConns    = flag.Int("max-conns", 1024, "concurrent connection cap (0 = unlimited)")
		cacheBudget = flag.Int64("cache-budget", 0, "module-cache resident-byte budget (0 = unbounded)")
		readTO      = flag.Duration("read-timeout", 0, "per-request header/body read deadline (0 = request timeout)")
		drainTO     = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound on shutdown")
	)
	flag.Parse()

	cfg := sledge.Config{
		Workers:          *workers,
		Quantum:          time.Duration(*quantumMS) * time.Millisecond,
		KV:               sledge.NewMapKV(),
		MaxConns:         *maxConns,
		CacheBudgetBytes: *cacheBudget,
	}
	if *readTO != 0 {
		cfg.HTTPReadTimeout = *readTO
	}
	if *admissionOn {
		cfg.Admission = &sledge.AdmissionConfig{
			MaxInflight: *maxInflight,
			MaxQueue:    *maxQueue,
			TenantRate:  *tenantRPS,
			TenantBurst: *tenantBurst,
			Breaker:     sledge.BreakerConfig{Cooldown: *breakerCool},
		}
	}
	rt := sledge.New(cfg)
	defer rt.Close()

	if *useApps {
		if err := registerSuite(rt); err != nil {
			log.Fatal(err)
		}
		log.Printf("registered built-in suite (%d apps)", len(apps.Names()))
	}
	if *configPath != "" {
		if err := rt.LoadModulesFile(*configPath); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded modules from %s", *configPath)
	}
	if len(rt.Modules()) == 0 {
		log.Fatal("no modules registered; pass -apps or -config")
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	var draining atomic.Bool
	go func() {
		sig := <-sigs
		draining.Store(true)
		log.Printf("%s: draining (up to %v)", sig, *drainTO)
		if rt.Drain(*drainTO) {
			log.Print("drain complete")
		} else {
			log.Print("drain timed out; exiting with work in flight")
		}
		os.Exit(0)
	}()

	log.Printf("sledge listening on %s with %d workers (%d modules, admission=%v)",
		*listen, *workers, len(rt.Modules()), *admissionOn)
	err = rt.Serve(ln)
	if draining.Load() {
		// The listener closed because a drain is in progress; the signal
		// goroutine owns shutdown and exits the process when it is done.
		select {}
	}
	if err != nil {
		log.Fatal(err)
	}
}

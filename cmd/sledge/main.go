// Command sledge runs the serverless runtime as a server: it loads a
// JSON module configuration (or the built-in application suite), then
// serves function invocations over HTTP.
//
// Usage:
//
//	sledge -listen :8080 -apps                 # serve the built-in suite
//	sledge -listen :8080 -config modules.json  # serve configured modules
//
// Configuration format:
//
//	{
//	  "modules": [
//	    {"name": "hello", "path": "hello.wcc"},
//	    {"name": "fn2", "path": "fn2.wasm", "entry": "main"}
//	  ]
//	}
package main

import (
	"flag"
	"log"
	"runtime"
	"time"

	"sledge"
	"sledge/internal/workloads/apps"
)

func main() {
	var (
		listen     = flag.String("listen", ":8080", "listen address")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker cores")
		quantumMS  = flag.Int("quantum-ms", 5, "preemption quantum in milliseconds")
		configPath = flag.String("config", "", "JSON module configuration file")
		useApps    = flag.Bool("apps", false, "register the built-in application suite")
	)
	flag.Parse()

	rt := sledge.New(sledge.Config{
		Workers: *workers,
		Quantum: time.Duration(*quantumMS) * time.Millisecond,
		KV:      sledge.NewMapKV(),
	})
	defer rt.Close()

	if *useApps {
		for _, name := range apps.Names() {
			app, _ := apps.Get(name)
			cm, err := app.Compile(rt.EngineConfig())
			if err != nil {
				log.Fatalf("compile %s: %v", name, err)
			}
			if _, err := rt.RegisterCompiled(name, cm, "main", ""); err != nil {
				log.Fatalf("register %s: %v", name, err)
			}
			log.Printf("registered built-in %s", name)
		}
	}
	if *configPath != "" {
		if err := rt.LoadModulesFile(*configPath); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded modules from %s", *configPath)
	}
	if len(rt.Modules()) == 0 {
		log.Fatal("no modules registered; pass -apps or -config")
	}

	log.Printf("sledge listening on %s with %d workers (%d modules)",
		*listen, *workers, len(rt.Modules()))
	if err := rt.ListenAndServe(*listen); err != nil {
		log.Fatal(err)
	}
}

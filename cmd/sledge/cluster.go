// The cluster subcommand runs a federated edge–cloud continuum in one
// process: it brings up one Sledge runtime per node declared in a topology
// file, registers them all with a cluster router, and serves the router's
// HTTP front end. Requests are placed by link latency + modeled queue wait
// + service estimate; a node's admission rejection is offloaded to the
// next-best peer within the deadline instead of surfacing as a shed.
//
// Usage:
//
//	sledge cluster -listen :8080 -topology continuum.json -apps
//
// Topology format (class is "edge" or "cloud"; link_ms is the simulated
// one-way link latency between the router and the node; max_inflight and
// max_queue bound the node's admission window, 0 = defaults):
//
//	{
//	  "nodes": [
//	    {"name": "edge0",  "class": "edge",  "workers": 1, "link_ms": 0.5},
//	    {"name": "edge1",  "class": "edge",  "workers": 1, "link_ms": 0.5},
//	    {"name": "cloud0", "class": "cloud", "workers": 4, "link_ms": 5}
//	  ]
//	}
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"sledge"
	"sledge/internal/workloads/apps"
)

type clusterTopology struct {
	Nodes []clusterNode `json:"nodes"`
}

type clusterNode struct {
	Name        string  `json:"name"`
	Class       string  `json:"class"`
	Workers     int     `json:"workers"`
	LinkMS      float64 `json:"link_ms"`
	MaxInflight int     `json:"max_inflight"`
	MaxQueue    int     `json:"max_queue"`
}

func clusterMain(args []string) {
	fs := flag.NewFlagSet("sledge cluster", flag.ExitOnError)
	var (
		listen     = fs.String("listen", ":8080", "router listen address")
		topoPath   = fs.String("topology", "", "JSON cluster topology file (required)")
		configPath = fs.String("config", "", "JSON module configuration loaded on every node")
		useApps    = fs.Bool("apps", false, "register the built-in application suite on every node")
		poll       = fs.Duration("poll", 0, "health poll interval (0 = default 10ms)")
		deadline   = fs.Duration("deadline", 0, "default request deadline (0 = default 1s)")
		kvLatency  = fs.Duration("kv-latency", 0, "simulated storage access latency (0 = synchronous store)")
		drainTO    = fs.Duration("drain-timeout", 30*time.Second, "graceful-drain bound on shutdown")
	)
	fs.Parse(args)
	if *topoPath == "" {
		log.Fatal("sledge cluster: -topology is required")
	}
	data, err := os.ReadFile(*topoPath)
	if err != nil {
		log.Fatal(err)
	}
	var topo clusterTopology
	if err := json.Unmarshal(data, &topo); err != nil {
		log.Fatalf("topology %s: %v", *topoPath, err)
	}
	if len(topo.Nodes) == 0 {
		log.Fatalf("topology %s declares no nodes", *topoPath)
	}
	if !*useApps && *configPath == "" {
		log.Fatal("sledge cluster: pass -apps or -config so nodes have modules to serve")
	}

	// All nodes share one object store, each behind its own (identical)
	// simulated access latency — the shared-storage continuum the cluster
	// experiment models.
	var store sledge.KVStore = sledge.NewMapKV()
	if *kvLatency > 0 {
		store = &sledge.LatentKV{KVStore: store, Delay: *kvLatency}
	}

	router := sledge.NewCluster(sledge.ClusterConfig{
		PollInterval:    *poll,
		DefaultDeadline: *deadline,
	})
	var nodes []*sledge.Runtime
	closeAll := func() {
		router.Close()
		for _, rt := range nodes {
			rt.Close()
		}
	}
	for _, n := range topo.Nodes {
		class, err := sledge.ParseNodeClass(n.Class)
		if err != nil {
			log.Fatalf("node %s: %v", n.Name, err)
		}
		workers := n.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		rt := sledge.New(sledge.Config{
			Workers: workers,
			KV:      store,
			Admission: &sledge.AdmissionConfig{
				MaxInflight: n.MaxInflight,
				MaxQueue:    n.MaxQueue,
			},
		})
		nodes = append(nodes, rt)
		if *useApps {
			if err := registerSuite(rt); err != nil {
				closeAll()
				log.Fatalf("node %s: %v", n.Name, err)
			}
		}
		if *configPath != "" {
			if err := rt.LoadModulesFile(*configPath); err != nil {
				closeAll()
				log.Fatalf("node %s: %v", n.Name, err)
			}
		}
		if err := router.Register(sledge.ClusterNodeConfig{
			Name:    n.Name,
			Class:   class,
			Link:    time.Duration(n.LinkMS * float64(time.Millisecond)),
			Runtime: rt,
		}); err != nil {
			closeAll()
			log.Fatalf("register %s: %v", n.Name, err)
		}
		log.Printf("node %s up: class=%s workers=%d link=%.1fms", n.Name, class, workers, n.LinkMS)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		closeAll()
		log.Fatal(err)
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	var draining atomic.Bool
	go func() {
		sig := <-sigs
		draining.Store(true)
		log.Printf("%s: draining cluster (up to %v)", sig, *drainTO)
		if router.Drain(*drainTO) {
			log.Print("drain complete")
		} else {
			log.Print("drain timed out; exiting with work in flight")
		}
		for _, rt := range nodes {
			rt.Close()
		}
		os.Exit(0)
	}()

	log.Printf("sledge cluster listening on %s (%d nodes)", *listen, len(topo.Nodes))
	err = router.Serve(ln)
	if draining.Load() {
		// The listener closed because a drain is in progress; the signal
		// goroutine owns shutdown and exits the process when it is done.
		select {}
	}
	if err != nil {
		log.Fatal(err)
	}
}

// registerSuite compiles and registers the built-in application suite.
func registerSuite(rt *sledge.Runtime) error {
	for _, name := range apps.Names() {
		app, _ := apps.Get(name)
		cm, err := app.Compile(rt.EngineConfig())
		if err != nil {
			return err
		}
		if _, err := rt.RegisterCompiled(name, cm, "main", ""); err != nil {
			return err
		}
	}
	return nil
}

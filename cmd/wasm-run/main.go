// Command wasm-run executes a single function from a WebAssembly binary (or
// a WCC source file, compiled on the fly) in a standalone Sledge sandbox:
// stdin becomes the request body, stdout receives the function's output.
//
// Usage:
//
//	echo hello | wasm-run fn.wasm
//	wasm-run -entry kernel -arg 24 -bounds mpx kernel.wcc
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"sledge/internal/abi"
	"sledge/internal/engine"
	"sledge/internal/wcc"
)

func main() {
	var (
		entry  = flag.String("entry", "main", "exported function to invoke")
		bounds = flag.String("bounds", "guard", "bounds strategy: guard, software, fused, mpx, none")
		tier   = flag.String("tier", "optimized", "execution tier: optimized, naive")
		args   = flag.String("arg", "", "comma-separated u64 arguments for the entry function")
		heap   = flag.Int("heap", 0, "heap bytes for WCC compilation")
		fuel   = flag.Int64("fuel", 0, "fuel limit (0 = unlimited)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wasm-run [flags] module.{wasm,wcc}")
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	bin := data
	if strings.HasSuffix(path, ".wcc") {
		res, err := wcc.Compile(string(data), wcc.Options{HeapBytes: *heap})
		if err != nil {
			log.Fatal(err)
		}
		bin = res.Binary
	}

	cfg := engine.Config{Bounds: parseBounds(*bounds), Tier: parseTier(*tier)}
	cm, err := engine.CompileBinary(bin, abi.Registry(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	var callArgs []uint64
	if *args != "" {
		for _, part := range strings.Split(*args, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(part), 0, 64)
			if err != nil {
				log.Fatalf("bad argument %q: %v", part, err)
			}
			callArgs = append(callArgs, v)
		}
	}

	req, err := io.ReadAll(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	inst := cm.Instantiate()
	ctx := abi.NewContext(req)
	ctx.KV = abi.NewMapKV()
	inst.HostData = ctx

	if err := inst.Start(*entry, callArgs...); err != nil {
		log.Fatal(err)
	}
	st, err := inst.Run(*fuel)
	if err != nil {
		log.Fatalf("trap: %v", err)
	}
	if st != engine.StatusDone {
		log.Fatalf("execution ended with status %s", st)
	}
	os.Stdout.Write(ctx.Response)
	if v, err := inst.Result(); err == nil {
		fmt.Fprintf(os.Stderr, "result: %d (0x%x), %d gas\n", v, v, inst.Gas)
	}
}

func parseBounds(s string) engine.BoundsStrategy {
	switch s {
	case "guard":
		return engine.BoundsGuard
	case "software":
		return engine.BoundsSoftware
	case "fused":
		return engine.BoundsSoftwareFused
	case "mpx":
		return engine.BoundsMPX
	case "none":
		return engine.BoundsNone
	}
	log.Fatalf("unknown bounds strategy %q", s)
	return 0
}

func parseTier(s string) engine.Tier {
	switch s {
	case "optimized":
		return engine.TierOptimized
	case "naive":
		return engine.TierNaive
	}
	log.Fatalf("unknown tier %q", s)
	return 0
}

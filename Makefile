GO ?= go

.PHONY: check vet build test-race bench-smoke test bench

# check is the pre-merge gate for the zero-allocation request path: static
# analysis, a full build, the race detector over the recycling-sensitive
# packages, and a short churn-benchmark smoke run (allocs/op regressions
# show up immediately in its -benchmem output).
check: vet build test-race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test-race:
	$(GO) test -race ./internal/sandbox/... ./internal/sched/... ./internal/core/...

bench-smoke:
	$(GO) test -run=NONE -bench=Churn -benchtime=100x -benchmem .

test:
	$(GO) test ./...

bench:
	$(GO) test -run=NONE -bench=. -benchmem .

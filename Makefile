GO ?= go

.PHONY: check vet analyzers build test-race bench-smoke overload-smoke fuzz-smoke regalloc-smoke sched-smoke tierup-smoke cluster-smoke meter-smoke warm-smoke chain-smoke test bench bench-regalloc bench-sched bench-tierup bench-cluster bench-meter bench-warm bench-chain

# check is the pre-merge gate: static analysis (go vet plus the project
# analyzers: noalloc hot-path enforcement, mutex-copy and lock-ordering,
# atomicfield mixed atomic/plain access detection), a
# full build, the race detector over the concurrency-sensitive packages
# (recycling, scheduler, admission control, HTTP drain), a short
# churn-benchmark smoke run (allocs/op regressions show up immediately in
# its -benchmem output), an overload smoke run (admission at 2x capacity
# must shed cleanly: admitted error rate < 1%), a scheduler scale-out smoke
# run (every workers x distribution cell completes its closed loop), a
# metering smoke run (block-metered and per-instruction runs charge
# bit-identical gas under preemptive slicing), a warm-start smoke run
# (snapshot first invoke beats start replay, the bounded module cache
# holds goodput while evicting), a function-composition smoke run (the
# co-located pipeline beats the HTTP self-call chain with bit-identical
# replies and gas), and fuzz smokes: a 30s differential fuzz of the
# check-elision pipeline (every bounds strategy with elision on/off, in
# both metering modes, must produce identical results, traps, and gas) and
# a hostile-input fuzz of the sledge.output handoff host call (arbitrary
# ptr/len must trap or stay in bounds).
check: vet analyzers build test-race bench-smoke overload-smoke regalloc-smoke sched-smoke tierup-smoke cluster-smoke meter-smoke warm-smoke chain-smoke fuzz-smoke

vet:
	$(GO) vet ./...

analyzers:
	$(GO) run ./tools/analyzers ./internal/... ./cmd/... ./tools/... .

build:
	$(GO) build ./...

test-race:
	$(GO) test -race ./internal/sandbox/... ./internal/sched/... ./internal/core/... \
		./internal/admission/... ./internal/httpd/... ./internal/cluster/... ./internal/stats/...
	$(GO) test -race -run 'TestPool' ./internal/engine/

bench-smoke:
	$(GO) test -run=NONE -bench=Churn -benchtime=100x -benchmem .

overload-smoke:
	$(GO) test -run=TestOverloadSmoke -count=1 ./internal/experiments/

# regalloc-smoke runs the register-IR ablation end-to-end at quick sizes
# (correctness + snapshot plumbing); the acceptance-grade numbers come from
# `make bench-regalloc`, which regenerates BENCH_regalloc.json at full sizes.
regalloc-smoke:
	$(GO) test -run=TestRegallocAblationSmoke -count=1 ./internal/experiments/

bench-regalloc:
	$(GO) run ./cmd/sledge-bench -run regalloc -snapshot BENCH_regalloc.json

# sched-smoke runs the scheduler scale-out sweep at quick sizes (all
# distribution modes complete + snapshot plumbing); the acceptance-grade
# numbers come from `make bench-sched`, which regenerates BENCH_sched.json
# across Workers x {work-stealing, global-deque, global-lock, static}.
sched-smoke:
	$(GO) test -run=TestSchedBenchSmoke -count=1 ./internal/experiments/

bench-sched:
	$(GO) run ./cmd/sledge-bench -run sched -snapshot BENCH_sched.json

# tierup-smoke runs the adaptive-tiering benchmark at quick sizes (both
# halves complete, every response bit-identical across tier swaps, cheap
# rungs strictly faster to register); the acceptance-grade numbers come
# from `make bench-tierup`, which regenerates BENCH_tierup.json: the
# 10k-module registration storm and the Zipf time-to-peak-throughput sweep.
tierup-smoke:
	$(GO) test -run=TestTierupSmoke -count=1 ./internal/experiments/

bench-tierup:
	$(GO) run ./cmd/sledge-bench -run tierup -snapshot BENCH_tierup.json

# cluster-smoke runs the edge-cloud continuum end-to-end under the race
# detector at quick sizes: the 3-node in-process cluster comes up, the
# offload path is exercised (router offloads > 0 under overload), and
# federated goodput beats the isolated spray. The acceptance-grade numbers
# (federated >= 1.3x isolated at 2x aggregate load, admitted p99 within
# deadline) come from `make bench-cluster`, which regenerates
# BENCH_cluster.json at full sizes.
cluster-smoke:
	$(GO) test -race -run=TestContinuumSmoke -count=1 ./internal/experiments/

bench-cluster:
	$(GO) run ./cmd/sledge-bench -run cluster -snapshot BENCH_cluster.json

# meter-smoke runs the basic-block fuel-metering ablation at quick sizes
# (both metering modes complete every kernel under preemptive slicing with
# bit-identical gas); the acceptance-grade number (PolyBench geomean
# speedup > 1.0 over the per-instruction oracle) comes from
# `make bench-meter`, which regenerates BENCH_meter.json at full sizes.
meter-smoke:
	$(GO) test -run=TestMeterSmoke -count=1 ./internal/experiments/

bench-meter:
	$(GO) run ./cmd/sledge-bench -run meter -snapshot BENCH_meter.json

# warm-smoke runs the warm-start benchmark at quick sizes (snapshot first
# invoke >= 5x over start-function replay, budgeted fleet churns its cache
# without collapsing goodput, every reply validated); the acceptance-grade
# numbers (>= 5x first invoke, budgeted goodput >= 0.9x unbounded over the
# 10k-module fleet with steady RSS) come from `make bench-warm`, which
# regenerates BENCH_warm.json at full sizes.
warm-smoke:
	$(GO) test -run=TestWarmSmoke -count=1 ./internal/experiments/

bench-warm:
	$(GO) run ./cmd/sledge-bench -run warm -snapshot BENCH_warm.json

# chain-smoke runs the function-composition benchmark at quick sizes (the
# registered pipeline and the HTTP self-call chain return bit-identical
# replies and per-stage gas, the zero-copy handoff path is exercised, and
# the co-located pipeline clearly wins); the acceptance-grade number
# (pipeline p50 >= 3x faster than HTTP self-call) comes from
# `make bench-chain`, which regenerates BENCH_chain.json at full sizes.
chain-smoke:
	$(GO) test -run=TestChainSmoke -count=1 ./internal/experiments/

bench-chain:
	$(GO) run ./cmd/sledge-bench -run chain -snapshot BENCH_chain.json

fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzDifferentialElision -fuzztime=30s ./internal/engine/
	$(GO) test -run=NONE -fuzz=FuzzOutputHostCall -fuzztime=15s ./internal/abi/

test:
	$(GO) test ./...

bench:
	$(GO) test -run=NONE -bench=. -benchmem .

GO ?= go

.PHONY: check vet build test-race bench-smoke overload-smoke test bench

# check is the pre-merge gate: static analysis, a full build, the race
# detector over the concurrency-sensitive packages (recycling, scheduler,
# admission control, HTTP drain), a short churn-benchmark smoke run
# (allocs/op regressions show up immediately in its -benchmem output),
# and an overload smoke run (admission at 2x capacity must shed cleanly:
# admitted error rate < 1%).
check: vet build test-race bench-smoke overload-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test-race:
	$(GO) test -race ./internal/sandbox/... ./internal/sched/... ./internal/core/... \
		./internal/admission/... ./internal/httpd/...

bench-smoke:
	$(GO) test -run=NONE -bench=Churn -benchtime=100x -benchmem .

overload-smoke:
	$(GO) test -run=TestOverloadSmoke -count=1 ./internal/experiments/

test:
	$(GO) test ./...

bench:
	$(GO) test -run=NONE -bench=. -benchmem .

package sledge_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIToolchain builds the wccc and wasm-run commands and drives the
// full toolchain from the shell: compile a WCC source to .wasm, then
// execute it standalone with a request on stdin.
func TestCLIToolchain(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e skipped in -short mode")
	}
	dir := t.TempDir()
	build := func(name string) string {
		t.Helper()
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", name, err, out)
		}
		return bin
	}
	wccc := build("wccc")
	wasmRun := build("wasm-run")

	src := filepath.Join(dir, "shout.wcc")
	if err := os.WriteFile(src, []byte(`
static u8 buf[256];

export i32 main() {
	i32 n = sys_read(buf, 256);
	for (i32 i = 0; i < n; i = i + 1) {
		if (buf[i] >= 97 && buf[i] <= 122) {
			buf[i] = buf[i] - 32;
		}
	}
	sys_write(buf, n);
	return 0;
}
`), 0o644); err != nil {
		t.Fatal(err)
	}

	// Compile with layout dump.
	out, err := exec.Command(wccc, "-dump", src).CombinedOutput()
	if err != nil {
		t.Fatalf("wccc: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "exports: main") {
		t.Errorf("wccc dump missing exports: %s", out)
	}
	wasmPath := filepath.Join(dir, "shout.wasm")
	if _, err := os.Stat(wasmPath); err != nil {
		t.Fatalf("wccc did not write %s: %v", wasmPath, err)
	}

	// Execute the binary under each bounds strategy.
	for _, bounds := range []string{"guard", "software", "fused", "mpx"} {
		cmd := exec.Command(wasmRun, "-bounds", bounds, wasmPath)
		cmd.Stdin = strings.NewReader("hello cli")
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("wasm-run -bounds %s: %v\n%s", bounds, err, stderr.String())
		}
		if stdout.String() != "HELLO CLI" {
			t.Errorf("bounds %s: output %q", bounds, stdout.String())
		}
	}

	// The .wcc path compiles on the fly too.
	cmd := exec.Command(wasmRun, src)
	cmd.Stdin = strings.NewReader("x")
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	if err := cmd.Run(); err != nil {
		t.Fatalf("wasm-run on .wcc: %v", err)
	}
	if stdout.String() != "X" {
		t.Errorf("wcc direct run output %q", stdout.String())
	}

	// Broken input fails with a nonzero exit.
	bad := filepath.Join(dir, "bad.wcc")
	os.WriteFile(bad, []byte("export i32 main() { return x; }"), 0o644)
	if err := exec.Command(wccc, bad).Run(); err == nil {
		t.Error("wccc accepted invalid source")
	}
}

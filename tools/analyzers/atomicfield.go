package main

import (
	"go/ast"
	"go/types"
)

// checkAtomicField enforces that a struct field published through atomics is
// never also accessed through plain loads and stores — the classic
// mixed-access race that vanishes under -race only when the plain side
// happens not to run concurrently. Two shapes are covered:
//
//  1. Fields of the method-based atomic types (atomic.Uint64, atomic.Int64,
//     atomic.Pointer[T], ...) may only be touched through their methods or
//     by taking their address (to pass to a helper that calls the methods).
//     Any other use — copying the value out, assigning over it — bypasses
//     the atomic protocol.
//  2. A plain-typed field whose address is passed to a sync/atomic free
//     function (atomic.LoadUint64(&s.f), atomic.AddInt64(&s.f, d), ...)
//     anywhere in the package must be accessed that way everywhere: a bare
//     read or write of the same field elsewhere races with the atomic side.
//
// The scheduler's deques, the tiering profile counters, and the cluster
// health/stat counters are exactly the state this guards; a single plain
// `w.qlen++` next to `w.qlen.Add(1)` call sites is a silent lost-update.
// Deliberate pre-publication initialization can be suppressed with a
// //sledge:coldpath marker like the other checks.
func checkAtomicField(p *pass) {
	// Pass 1: find every field reached through sync/atomic — by type, or by
	// address-of argument to a free function — and remember the uses that
	// are part of the atomic protocol itself (blessed).
	viaFunc := make(map[*types.Var]bool)
	blessed := make(map[ast.Expr]bool)
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn, ok := n.Fun.(*ast.SelectorExpr); ok && p.isAtomicPkgFunc(fn) {
					for _, arg := range n.Args {
						if u, ok := arg.(*ast.UnaryExpr); ok {
							if fld := p.fieldOf(u.X); fld != nil {
								viaFunc[fld] = true
								blessed[u.X] = true
							}
						}
					}
				}
			case *ast.SelectorExpr:
				// s.f.Load / s.f.Store / ... — method access on an
				// atomic-typed field blesses the inner selector.
				if sel, ok := p.info.Selections[n]; ok && sel.Kind() != types.FieldVal {
					blessed[n.X] = true
				}
			case *ast.UnaryExpr:
				// &s.f on an atomic-typed field: passing the atomic itself
				// around is fine; the callee still goes through methods.
				if fld := p.fieldOf(n.X); fld != nil && isAtomicType(fld.Type()) {
					blessed[n.X] = true
				}
			}
			return true
		})
	}

	// Pass 2: every remaining use of a tracked field is a plain access.
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || blessed[sel] {
				return true
			}
			fld := p.fieldOf(sel)
			if fld == nil {
				return true
			}
			if isAtomicType(fld.Type()) {
				p.reportf(sel.Pos(), "field %s has atomic type %s: access it only through its methods or by address",
					fld.Name(), fld.Type())
			} else if viaFunc[fld] {
				p.reportf(sel.Pos(), "field %s is accessed via sync/atomic elsewhere in this package: plain access races with it",
					fld.Name())
			}
			return true
		})
	}
}

// fieldOf resolves e to the struct field it selects, or nil.
func (p *pass) fieldOf(e ast.Expr) *types.Var {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := p.info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// isAtomicPkgFunc reports whether fn selects a function from sync/atomic
// (atomic.LoadUint64, atomic.AddInt64, atomic.CompareAndSwapPointer, ...).
func (p *pass) isAtomicPkgFunc(fn *ast.SelectorExpr) bool {
	id, ok := fn.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := p.info.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "sync/atomic"
}

// isAtomicType reports whether t is one of sync/atomic's method-based types
// (including instantiated atomic.Pointer[T]).
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

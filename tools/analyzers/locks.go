package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkLocks runs the two lock-hygiene checks:
//
//  1. Copying: a value whose type contains a sync.Mutex or sync.RWMutex by
//     value must never be copied — through parameters, results, plain
//     assignment from existing storage, or range variables. A copied mutex
//     is an independent lock and silently stops guarding anything.
//  2. Ordering: lock acquisition order must be globally consistent. For
//     every function we record which locks are taken while which others are
//     held; two functions establishing opposite pairwise orders are a
//     latent deadlock (the scheduler's per-worker deques and the admission
//     controller's tenant/global locks are exactly this shape).
func checkLocks(p *pass) {
	order := make(map[[2]string]token.Pos)
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockCopies(p, fd)
			collectLockOrder(p, fd, order)
		}
	}
	reportOrderConflicts(p, order)
}

// containsLock reports whether t holds a sync.Mutex/RWMutex by value.
func containsLock(t types.Type) bool {
	return containsLockSeen(t, make(map[types.Type]bool))
}

func containsLockSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockSeen(u.Elem(), seen)
	}
	return false
}

// checkLockCopies flags by-value movement of lock-bearing values.
func checkLockCopies(p *pass, fd *ast.FuncDecl) {
	flagFields := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := p.info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if containsLock(t) {
				p.reportf(field.Pos(), "locks %s: %s of type %s copies a mutex by value",
					fd.Name.Name, what, t)
			}
		}
	}
	flagFields(fd.Recv, "receiver")
	flagFields(fd.Type.Params, "parameter")
	flagFields(fd.Type.Results, "result")

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if !copiesFromStorage(rhs) {
					continue
				}
				if t := p.info.TypeOf(rhs); t != nil && containsLock(t) {
					p.reportf(rhs.Pos(), "locks %s: assignment copies %s, which contains a mutex",
						fd.Name.Name, t)
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := p.info.TypeOf(n.Value); t != nil && containsLock(t) {
					p.reportf(n.Value.Pos(), "locks %s: range copies %s, which contains a mutex",
						fd.Name.Name, t)
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if !copiesFromStorage(arg) {
					continue
				}
				if t := p.info.TypeOf(arg); t != nil && containsLock(t) {
					p.reportf(arg.Pos(), "locks %s: call passes %s by value, copying its mutex",
						fd.Name.Name, t)
				}
			}
		}
		return true
	})
}

// copiesFromStorage reports whether evaluating e copies an existing stored
// value (as opposed to a freshly constructed one, which is a move of a value
// no one else can hold).
func copiesFromStorage(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return copiesFromStorage(e.X)
	}
	return false
}

// lockKey renders the receiver of a Lock/Unlock call into a stable textual
// key ("s.mu", "pool.mu"). Unrenderable receivers return "".
func lockKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := lockKey(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	case *ast.ParenExpr:
		return lockKey(e.X)
	case *ast.StarExpr:
		return lockKey(e.X)
	case *ast.IndexExpr:
		if base := lockKey(e.X); base != "" {
			return base + "[]"
		}
	}
	return ""
}

// collectLockOrder walks fd in source order, tracking which lock keys are
// held, and records every (held, acquired) pair into order.
func collectLockOrder(p *pass, fd *ast.FuncDecl, order map[[2]string]token.Pos) {
	var held []string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		method := sel.Sel.Name
		if method != "Lock" && method != "RLock" && method != "Unlock" && method != "RUnlock" {
			return true
		}
		recv := p.info.TypeOf(sel.X)
		if recv == nil || !containsLock(recv) {
			if ptr, ok := recv.(*types.Pointer); !ok || !containsLock(ptr.Elem()) {
				return true
			}
		}
		key := lockKey(sel.X)
		if key == "" {
			return true
		}
		// Scope keys per function for locals; fields keep their selector
		// path so methods of the same type agree on the name.
		switch method {
		case "Lock", "RLock":
			for _, h := range held {
				if h != key {
					pair := [2]string{h, key}
					if _, seen := order[pair]; !seen {
						order[pair] = call.Pos()
					}
				}
			}
			held = append(held, key)
		case "Unlock", "RUnlock":
			for i := len(held) - 1; i >= 0; i-- {
				if held[i] == key {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		}
		return true
	})
}

func reportOrderConflicts(p *pass, order map[[2]string]token.Pos) {
	reported := make(map[[2]string]bool)
	for pair, pos := range order {
		rev := [2]string{pair[1], pair[0]}
		rpos, ok := order[rev]
		if !ok {
			continue
		}
		canon := pair
		if canon[0] > canon[1] {
			canon = rev
		}
		if reported[canon] {
			continue
		}
		reported[canon] = true
		p.reportf(pos, "locks: inconsistent lock order: %q before %q here, but %q before %q at %s",
			pair[0], pair[1], rev[0], rev[1], p.fset.Position(rpos))
	}
}

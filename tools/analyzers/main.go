// Command analyzers runs Sledge's project-specific static checks over Go
// package patterns:
//
//   - noalloc: functions annotated //sledge:noalloc must not contain
//     allocating constructs (make/new/append, escaping composite literals,
//     string concatenation, string<->[]byte conversions, go statements)
//     outside lines marked //sledge:coldpath. The request path's
//     zero-allocation contract is load-bearing for tail latency, and
//     benchmarks only catch regressions on the paths they exercise.
//   - locks: sync.Mutex/sync.RWMutex values must not be copied (parameters,
//     assignments, range variables), and lock acquisition order must be
//     globally consistent — two functions taking the same two locks in
//     opposite orders is a latent deadlock (the scheduler and admission
//     controller hold per-tenant and global locks together).
//   - atomicfield: a struct field published through sync/atomic — either an
//     atomic.Uint64/Int64/Pointer-style typed field or a plain field whose
//     address is passed to a sync/atomic free function — must never also be
//     accessed through plain loads and stores. Mixed access is a data race
//     that -race only catches when both sides happen to run concurrently.
//
// The tool is deliberately stdlib-only (no golang.org/x/tools): it shells
// out to `go list -export -deps -json` for export data and type-checks each
// target package with go/types + importer.ForCompiler. Exit status is 1 when
// any diagnostic fires, 2 on operational failure.
//
// Usage: go run ./tools/analyzers ./internal/... ./cmd/...
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

type listPkg struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

type diag struct {
	pos token.Position
	msg string
}

// pass bundles one type-checked package for the checkers.
type pass struct {
	fset  *token.FileSet
	files []*ast.File
	info  *types.Info
	// suppress maps filename -> set of line numbers carrying a
	// //sledge:coldpath marker (the line itself and the line below, so both
	// trailing and preceding comment placement work).
	suppress map[string]map[int]bool
	diags    *[]diag
}

func (p *pass) reportf(pos token.Pos, format string, args ...any) {
	position := p.fset.Position(pos)
	if p.suppress[position.Filename][position.Line] {
		return
	}
	*p.diags = append(*p.diags, diag{position, fmt.Sprintf(format, args...)})
}

func main() {
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analyze(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyzers:", err)
		os.Exit(2)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].pos, diags[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, d := range diags {
		fmt.Printf("%s: %s\n", d.pos, d.msg)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func analyze(patterns []string) ([]diag, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export: %w", err)
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f := exports[path]
		if f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var diags []diag
	for _, pkg := range targets {
		if err := analyzePackage(fset, imp, pkg, &diags); err != nil {
			return nil, fmt.Errorf("%s: %w", pkg.ImportPath, err)
		}
	}
	return diags, nil
}

func analyzePackage(fset *token.FileSet, imp types.Importer, pkg listPkg, diags *[]diag) error {
	var files []*ast.File
	suppress := make(map[string]map[int]bool)
	for _, name := range pkg.GoFiles {
		path := filepath.Join(pkg.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		files = append(files, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, "sledge:coldpath") {
					line := fset.Position(c.Pos()).Line
					if suppress[path] == nil {
						suppress[path] = make(map[int]bool)
					}
					suppress[path][line] = true
					suppress[path][line+1] = true
				}
			}
		}
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	if _, err := conf.Check(pkg.ImportPath, fset, files, info); err != nil {
		return fmt.Errorf("typecheck: %w", err)
	}
	p := &pass{fset: fset, files: files, info: info, suppress: suppress, diags: diags}
	checkNoalloc(p)
	checkLocks(p)
	checkAtomicField(p)
	return nil
}

// hasDirective reports whether a doc comment group carries the given
// //sledge:* directive.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//"+directive) {
			return true
		}
	}
	return false
}

package main

import (
	"os/exec"
	"strings"
	"testing"
)

// runAnalyzer builds and runs the analyzer binary against one pattern, from
// this package's directory (go test runs with cwd = package dir).
func runAnalyzer(t *testing.T, pattern string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "run", ".", pattern)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestBadPackageFlagged(t *testing.T) {
	out, err := runAnalyzer(t, "./testdata/bad")
	if err == nil {
		t.Fatalf("expected nonzero exit on testdata/bad, output:\n%s", out)
	}
	for _, want := range []string{
		"make allocates",
		"append allocates",
		"composite literal escapes",
		"string concatenation allocates",
		"parameter of type",
		"assignment copies",
		"inconsistent lock order",
		"access it only through its methods",
		"plain access races with it",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diagnostic %q missing from output:\n%s", want, out)
		}
	}
}

func TestGoodPackageClean(t *testing.T) {
	out, err := runAnalyzer(t, "./testdata/good")
	if err != nil {
		t.Fatalf("analyzer flagged clean package: %v\n%s", err, out)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("unexpected output on clean package:\n%s", out)
	}
}

// Package bad holds deliberate violations of every analyzer rule; the
// analyzer's own tests assert each one is flagged.
package bad

import (
	"sync"
	"sync/atomic"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

// Sum is annotated noalloc but allocates three ways.
//
//sledge:noalloc
func Sum(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// Escape is annotated noalloc but returns a heap-escaping literal.
//
//sledge:noalloc
func Escape() *guarded {
	return &guarded{n: 1}
}

// Concat is annotated noalloc but concatenates strings.
//
//sledge:noalloc
func Concat(a, b string) string {
	return a + b
}

// ByValue copies the mutex inside its parameter.
func ByValue(g guarded) int {
	return g.n
}

// CopyOut copies a lock-bearing value out of a pointer.
func CopyOut(g *guarded) {
	snapshot := *g
	_ = snapshot
}

var lockA, lockB sync.Mutex

// ForwardOrder takes A then B.
func ForwardOrder() {
	lockA.Lock()
	lockB.Lock()
	lockB.Unlock()
	lockA.Unlock()
}

// ReverseOrder takes B then A: a deadlock against ForwardOrder.
func ReverseOrder() {
	lockB.Lock()
	lockA.Lock()
	lockA.Unlock()
	lockB.Unlock()
}

type counters struct {
	hits  atomicUint
	plain uint64
}

type atomicUint = atomic.Uint64

// MixedTyped copies an atomic-typed field out: bypasses the protocol.
func MixedTyped(c *counters) atomic.Uint64 {
	return c.hits
}

// MixedPlain reads a field that AtomicSide below touches via sync/atomic.
func MixedPlain(c *counters) uint64 {
	return c.plain
}

// AtomicSide is the atomic half of the race MixedPlain introduces.
func AtomicSide(c *counters) {
	atomic.AddUint64(&c.plain, 1)
}

// Package good exercises the same shapes as package bad, written within the
// rules; the analyzer must stay silent on all of it.
package good

import (
	"sync"
	"sync/atomic"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

// Sum allocates nothing.
//
//sledge:noalloc
func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// Grow documents its deliberate slow path with a coldpath marker.
//
//sledge:noalloc
func Grow(buf []byte, need int) []byte {
	if cap(buf) >= need {
		return buf[:need]
	}
	return make([]byte, need) //sledge:coldpath
}

// ByPointer takes the guarded value by pointer and locks consistently.
func ByPointer(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

var lockA, lockB sync.Mutex

// OrderOne and OrderTwo agree on A-before-B.
func OrderOne() {
	lockA.Lock()
	lockB.Lock()
	lockB.Unlock()
	lockA.Unlock()
}

func OrderTwo() {
	lockA.Lock()
	lockB.Lock()
	lockB.Unlock()
	lockA.Unlock()
}

type counters struct {
	hits  atomic.Uint64
	plain uint64
}

// Touch uses the atomic field only through methods and by address, and the
// plain field only with sync/atomic free functions.
func Touch(c *counters) uint64 {
	c.hits.Add(1)
	bump(&c.hits)
	atomic.AddUint64(&c.plain, 2)
	return c.hits.Load() + atomic.LoadUint64(&c.plain)
}

func bump(u *atomic.Uint64) { u.Add(1) }

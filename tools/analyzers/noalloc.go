package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkNoalloc enforces the //sledge:noalloc directive: the function body
// must be free of constructs that allocate on the Go heap. Lines marked
// //sledge:coldpath are exempt — they document a deliberate slow path (pool
// miss, capacity growth) that the steady state never takes.
//
// The check is necessarily conservative in both directions: it cannot see
// escape analysis (a flagged composite literal might stay on the stack), and
// it does not model allocations inside callees. It exists to keep obvious
// allocation regressions out of the recycling hot path, not to replace the
// allocs/op benchmarks.
func checkNoalloc(p *pass) {
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "sledge:noalloc") {
				continue
			}
			checkNoallocBody(p, fd)
		}
	}
}

func checkNoallocBody(p *pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure body runs on its own schedule; the literal itself is
			// usually non-escaping in the patterns we annotate. Skip.
			return false
		case *ast.GoStmt:
			p.reportf(n.Pos(), "noalloc %s: go statement allocates a goroutine", name)
		case *ast.CallExpr:
			checkNoallocCall(p, name, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					p.reportf(n.Pos(), "noalloc %s: address of composite literal escapes to the heap", name)
				}
			}
		case *ast.CompositeLit:
			if t := p.info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Map, *types.Slice:
					p.reportf(n.Pos(), "noalloc %s: %s literal allocates", name, t)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := p.info.TypeOf(n.X); t != nil && isString(t) {
					p.reportf(n.Pos(), "noalloc %s: string concatenation allocates", name)
				}
			}
		}
		return true
	})
}

func checkNoallocCall(p *pass, name string, call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := p.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				p.reportf(call.Pos(), "noalloc %s: %s allocates", name, b.Name())
			}
			return
		}
	}
	// Conversions between string and []byte/[]rune copy the contents.
	if tv, ok := p.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := p.info.TypeOf(call.Args[0])
		if from != nil && stringByteConv(to, from) {
			p.reportf(call.Pos(), "noalloc %s: %s(%s) conversion allocates", name, to, from)
		}
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func stringByteConv(to, from types.Type) bool {
	return (isString(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isString(from))
}

// Package sledge is the public API of the Sledge reproduction: a
// serverless-first, light-weight WebAssembly runtime for the edge
// (Gadepalli et al., Middleware '20), implemented from scratch in Go.
//
// The runtime executes multi-tenant serverless functions as Wasm sandboxes
// inside a single process:
//
//	rt := sledge.New(sledge.Config{Workers: 4})
//	defer rt.Close()
//	rt.RegisterWCC("hello", src, sledge.WCCOptions{})
//	resp, err := rt.Invoke("hello", []byte("world"))   // or rt.ListenAndServe(":8080")
//
// Functions are written in WCC (a small C-like language, see internal/wcc)
// or provided as WebAssembly binaries, compiled ahead of time at
// registration, and instantiated per request in microseconds. Scheduling is
// preemptive round-robin over a lock-free work-stealing deque, reproducing
// the paper's decoupling of work distribution from temporal isolation.
//
// The packages under internal/ contain the substrates: the Wasm binary
// toolchain (internal/wasm), the execution engine with configurable
// bounds-check strategies (internal/engine), the WCC compiler
// (internal/wcc), the scheduler (internal/sched), the serverless ABI
// (internal/abi), the workload suites (internal/workloads/...), the
// process-model baseline (internal/nuclio), and the paper-experiment
// drivers (internal/experiments).
package sledge

import (
	"sledge/internal/abi"
	"sledge/internal/admission"
	"sledge/internal/cluster"
	"sledge/internal/core"
	"sledge/internal/engine"
	"sledge/internal/sched"
	"sledge/internal/wcc"
)

// Core runtime types.
type (
	// Runtime is the single-process serverless runtime.
	Runtime = core.Runtime
	// Config configures a Runtime.
	Config = core.Config
	// Module is a registered function.
	Module = core.Module
)

// Function composition (internal/core/pipeline.go): RegisterPipeline names
// an ordered module chain, invocable at POST /p/<name> or
// Invoke("p/<name>"). One admission ticket and one deadline cover the whole
// chain; co-located stages hand intermediate results through shared
// linear-memory buffers (a stage declares its result region with the
// sledge.output host call and the next stage consumes it zero-copy) instead
// of HTTP self-calls, and each continuation is scheduled with affinity for
// the worker whose cache just produced its input. See docs/PIPELINES.md.
type (
	// Pipeline is a registered module chain.
	Pipeline = core.Pipeline
	// PipelineStats is a pipeline's accounting snapshot.
	PipelineStats = core.PipelineStats
)

// PipelinePrefix is the reserved invocation-name prefix for pipelines
// ("p/"); module names must not start with it.
const PipelinePrefix = core.PipelinePrefix

// ErrNoPipeline reports an unknown pipeline name.
var ErrNoPipeline = core.ErrNoPipeline

// Engine configuration: sandboxing tiers and memory-safety strategies.
type (
	// EngineConfig selects the execution tier and bounds-check strategy.
	EngineConfig = engine.Config
	// BoundsStrategy selects the memory-safety mechanism.
	BoundsStrategy = engine.BoundsStrategy
	// Tier selects the compilation tier.
	Tier = engine.Tier
)

// Bounds-check strategies (see the paper's §3.2).
const (
	BoundsGuard         = engine.BoundsGuard
	BoundsSoftware      = engine.BoundsSoftware
	BoundsSoftwareFused = engine.BoundsSoftwareFused
	BoundsMPX           = engine.BoundsMPX
	BoundsNone          = engine.BoundsNone
)

// Compilation tiers.
const (
	TierOptimized = engine.TierOptimized
	TierNaive     = engine.TierNaive
)

// Adaptive tiering (internal/core/tiering.go): with Config.Tiering set,
// Register* compiles only the cheap rung of the tier ladder so registration
// is near-instant, the completion path profiles per-module hotness
// (invocations + gas), and a background controller
// recompiles hot modules at the full fused+regalloc+elision rung, swapping
// the compiled form in atomically while in-flight requests finish on the
// code they started with.
type (
	// TieringConfig configures the tier ladder: thresholds, scan interval,
	// recompile concurrency cap, and the ablation mode.
	TieringConfig = core.TieringConfig
	// TieringMode selects adaptive promotion or one of the ablations.
	TieringMode = core.TieringMode
	// TieringSnapshot is the controller's accounting view (/__stats).
	TieringSnapshot = core.TieringSnapshot
)

// Tiering modes.
const (
	// TierAdaptive registers cheap and promotes hot modules in the
	// background (the default when Config.Tiering is set).
	TierAdaptive = core.TierAdaptive
	// TierStatic preserves the static behaviour: full pipeline at
	// registration, no promotion (the disable knob / ablation baseline).
	TierStatic = core.TierStatic
	// TierCheapOnly registers cheap and never promotes (ablation).
	TierCheapOnly = core.TierCheapOnly
)

// Scheduler configuration.
type (
	// SchedPolicy selects preemptive vs cooperative scheduling.
	SchedPolicy = sched.Policy
	// SchedDistribution selects the work-distribution mechanism.
	SchedDistribution = sched.Distribution
)

// Scheduling policies and distribution mechanisms (§3.4).
const (
	PolicyPreemptiveRR = sched.PolicyPreemptiveRR
	PolicyCooperative  = sched.PolicyCooperative

	DistWorkStealing = sched.DistWorkStealing
	DistGlobalLock   = sched.DistGlobalLock
	DistStatic       = sched.DistStatic
	DistGlobalDeque  = sched.DistGlobalDeque
)

// DefaultQuantum is the paper's 5 ms preemption time slice.
const DefaultQuantum = sched.DefaultQuantum

// WCCOptions configures WCC compilation at registration.
type WCCOptions = wcc.Options

// Admission control & overload management (internal/admission): per-tenant
// fair queueing, token-bucket rate limits, deadline-aware shedding, and
// per-module circuit breakers between the listener and the scheduler.
// Enable by setting Config.Admission; shut down with Runtime.Drain.
type (
	// AdmissionConfig configures the admission controller.
	AdmissionConfig = admission.Config
	// TenantConfig sets one tenant's DRR weight and rate limit.
	TenantConfig = admission.TenantConfig
	// BreakerConfig configures the per-module circuit breaker.
	BreakerConfig = admission.BreakerConfig
	// AdmissionRejection is the typed error for shed requests (429/503
	// with a Retry-After hint).
	AdmissionRejection = admission.Rejection
)

// Cluster tier (internal/cluster): a router front end that federates N
// runtimes as edge/cloud nodes with injected link latencies, places each
// request by link latency + modeled queue wait + service estimate, and
// offloads admission rejections to the next-best peer within the deadline
// instead of shedding (with hedged dispatch past the p99 budget). Serve it
// like a runtime: NewCluster(...), Register nodes, then Serve/Drain.
type (
	// ClusterRouter is the federated front tier over registered nodes.
	ClusterRouter = cluster.Router
	// ClusterConfig configures routing: poll interval, default deadline
	// and estimate, hedging thresholds.
	ClusterConfig = cluster.Config
	// ClusterNodeConfig declares one node: name, class, link latency, and
	// the member runtime.
	ClusterNodeConfig = cluster.NodeConfig
	// NodeClass labels a node's position on the continuum.
	NodeClass = cluster.Class
	// ClusterSnapshot is the router's accounting view (/__cluster).
	ClusterSnapshot = cluster.Snapshot
)

// Node classes.
const (
	ClassEdge  = cluster.ClassEdge
	ClassCloud = cluster.ClassCloud
)

// NewCluster starts a cluster router with no nodes registered.
func NewCluster(cfg ClusterConfig) *ClusterRouter { return cluster.New(cfg) }

// ParseNodeClass parses "edge" (or "") and "cloud".
func ParseNodeClass(s string) (NodeClass, error) { return cluster.ParseClass(s) }

// Storage backends for the serverless ABI's kv interface.
type (
	// KVStore is the synchronous storage interface.
	KVStore = abi.KVStore
	// MapKV is an in-memory store.
	MapKV = abi.MapKV
	// LatentKV wraps a store with simulated access latency, making
	// operations asynchronous (sandboxes block and resume via the
	// worker event loop).
	LatentKV = abi.LatentKV
)

// NewMapKV returns an empty in-memory KV store.
func NewMapKV() *MapKV { return abi.NewMapKV() }

// New starts a Sledge runtime.
func New(cfg Config) *Runtime { return core.New(cfg) }
